// Package ddp implements distributed data-parallel training over the
// simulated cluster, mirroring the paper's Dask-DDP integration: every
// worker holds a model replica, processes its shard of each (globally or
// locally shuffled) epoch, and averages gradients with a ring AllReduce.
// The gradient exchange is numerically real — replicas remain bitwise
// identical — while virtual clocks accumulate the Polaris-scale runtime.
package ddp

import (
	"fmt"
	"time"

	"pgti/internal/autograd"
	"pgti/internal/batching"
	"pgti/internal/cluster"
	"pgti/internal/metrics"
	"pgti/internal/nn"
	"pgti/internal/tensor"
)

// SamplerKind selects the epoch shuffling strategy.
type SamplerKind int

// The three strategies evaluated in the paper.
const (
	// GlobalShuffle reshuffles the full training set every epoch
	// (distributed-index-batching's default, §4.2).
	GlobalShuffle SamplerKind = iota
	// LocalShuffle shuffles within fixed per-worker partitions.
	LocalShuffle
	// BatchShuffle keeps batch contents fixed and shuffles batch order
	// within partitions (generalized-distributed-index-batching, §5.4).
	BatchShuffle
)

// String implements fmt.Stringer.
func (k SamplerKind) String() string {
	switch k {
	case LocalShuffle:
		return "local"
	case BatchShuffle:
		return "batch"
	default:
		return "global"
	}
}

// ModelFactory builds one model replica. It is called once per worker with
// the shared seed, so replicas initialize identically.
type ModelFactory func(seed uint64) nn.SeqModel

// SyncMode selects the gradient synchronization strategy.
type SyncMode int

// The two gradient-exchange schedules.
const (
	// SyncBucketedOverlap (default) partitions the gradients into
	// size-capped buckets and launches each bucket's ring AllReduce the
	// moment its parameters' gradients are final during backward,
	// overlapping communication with the remaining backward compute. The
	// virtual clock charges max(compute, pipelined comm) per step.
	SyncBucketedOverlap SyncMode = iota
	// SyncFlatten is the pre-bucketing baseline: one monolithic flattened
	// AllReduce after the whole backward pass, with its cost fully exposed
	// (compute + comm). Kept for ablation benchmarks.
	SyncFlatten
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	if m == SyncFlatten {
		return "flatten"
	}
	return "bucketed-overlap"
}

// DefaultBucketBytes caps one gradient bucket at 256 KiB (32Ki float64
// elements), a few buckets for the paper's model sizes — small enough to
// start communicating early in backward, large enough to stay
// bandwidth-bound rather than latency-bound.
const DefaultBucketBytes int64 = 256 << 10

// backwardShare is the fraction of one step's compute spent in the backward
// pass in the overlap model: forward occupies the first third, backward the
// remaining two (the usual 1:2 fwd:bwd cost ratio).
const backwardShare = 2.0 / 3.0

// Config parameterizes a distributed training run.
type Config struct {
	Workers   int
	BatchSize int // per worker; global batch = BatchSize * Workers
	Epochs    int
	LR        float64
	// UseLRScaling applies the linear scaling rule lr*Workers (§5.3.3's
	// mitigation for large-global-batch accuracy loss).
	UseLRScaling bool
	// ClipNorm, when > 0, clips the gradient norm before the optimizer
	// step. Note the clip point depends on Sync: SyncBucketedOverlap clips
	// the globally *averaged* gradients (buckets are already exchanged when
	// backward returns — torch-DDP semantics), while SyncFlatten preserves
	// the legacy order of clipping local gradients before the AllReduce.
	// With clipping enabled the two modes are therefore not bitwise
	// ablations of each other; disable it when comparing schedules.
	ClipNorm float64
	Sampler  SamplerKind
	Seed     uint64
	Net      cluster.NetworkModel
	// RemoteFetch models the baseline-DDP data path: every batch is fetched
	// on demand through the data service (charged to the virtual clock).
	// Distributed-index-batching leaves this false: data is worker-local.
	RemoteFetch bool
	// Store, when set, partitions the data across workers (generalized-
	// distributed-index-batching, §5.4): batches are assembled through the
	// store and only rows outside the worker's shard are charged as remote
	// traffic. Mutually exclusive with RemoteFetch.
	Store *batching.PartitionStore
	// ComputeCost, when set, supplies the modeled per-batch compute time
	// for the virtual clock (paper-scale runs). When nil, real elapsed time
	// is charged.
	ComputeCost func(batchItems int) time.Duration
	// Sync selects the gradient-exchange schedule (default bucketed
	// overlapping AllReduce).
	Sync SyncMode
	// BucketBytes caps one gradient bucket for SyncBucketedOverlap
	// (default DefaultBucketBytes).
	BucketBytes int64
}

// Result summarizes a distributed run.
type Result struct {
	Curve metrics.Curve
	// VirtualTime is the synchronized virtual clock at completion.
	VirtualTime time.Duration
	// CommTime is the portion of VirtualTime spent in *exposed* modeled
	// communication (gradient AllReduce + remote fetches) from worker 0's
	// perspective — comm hidden under backward compute by bucketed overlap
	// does not appear here.
	CommTime time.Duration
	// CommHiddenTime is the modeled communication cost that bucketed
	// overlap hid under backward compute (zero for SyncFlatten).
	CommHiddenTime time.Duration
	// GradSyncBytes is the total gradient traffic per worker.
	GradSyncBytes int64
	// GradBuckets is the number of gradient buckets per step (1 for
	// SyncFlatten).
	GradBuckets int
	// Steps is the number of optimizer steps taken.
	Steps int
	// GlobalBatch is BatchSize * Workers.
	GlobalBatch int
}

// FlattenGrads packs every parameter gradient into one contiguous vector
// (missing gradients contribute zeros), the unit of AllReduce traffic.
func FlattenGrads(params []*nn.Parameter, buf []float64) []float64 {
	n := 0
	for _, p := range params {
		n += p.Tensor().NumElements()
	}
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	pos := 0
	for _, p := range params {
		cnt := p.Tensor().NumElements()
		dst := buf[pos : pos+cnt]
		if p.V.Grad != nil {
			copy(dst, p.V.Grad.Contiguous().Data())
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		pos += cnt
	}
	return buf
}

// UnflattenGrads scatters vec back into the parameters' gradients,
// replacing their contents (gradients are allocated if absent).
func UnflattenGrads(params []*nn.Parameter, vec []float64) {
	pos := 0
	for _, p := range params {
		cnt := p.Tensor().NumElements()
		if p.V.Grad == nil || !p.V.Grad.IsContiguous() {
			p.V.Grad = tensor.New(p.Tensor().Shape()...)
		}
		copy(p.V.Grad.Data(), vec[pos:pos+cnt])
		pos += cnt
	}
}

// GradBucket groups parameters whose gradients travel as one AllReduce.
type GradBucket struct {
	Params []*nn.Parameter
	Elems  int
}

// BucketGrads partitions params into contiguous size-capped buckets in
// reverse parameter order — the approximate order gradients become final
// during backward (output-side layers first), so early buckets fill early.
// A single parameter larger than the cap gets a bucket of its own.
func BucketGrads(params []*nn.Parameter, bucketBytes int64) []GradBucket {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	capElems := int(bucketBytes / 8)
	if capElems < 1 {
		capElems = 1
	}
	var out []GradBucket
	var cur GradBucket
	for i := len(params) - 1; i >= 0; i-- {
		n := params[i].Tensor().NumElements()
		if len(cur.Params) > 0 && cur.Elems+n > capElems {
			out = append(out, cur)
			cur = GradBucket{}
		}
		cur.Params = append(cur.Params, params[i])
		cur.Elems += n
	}
	if len(cur.Params) > 0 {
		out = append(out, cur)
	}
	return out
}

// bucketSyncer drives one worker's overlapped gradient exchange for one
// step: the autograd gradient-ready hook counts down each bucket and
// launches its (clock-deferred) ring AllReduce mid-backward; after backward
// the syncer scatters the averaged buckets back and converts the launch
// timeline into the overlapped virtual-time charge.
type bucketSyncer struct {
	w       *cluster.Worker
	buckets []GradBucket
	// bucketOf maps a parameter's leaf variable to its bucket index.
	bucketOf   map[*autograd.Variable]int
	totalElems int

	remaining []int       // per bucket: params whose gradients are not yet final
	launched  []bool      // per bucket: AllReduce already issued this step
	flat      [][]float64 // per bucket: flatten/exchange scratch

	order     []int               // bucket indices in launch order
	events    []cluster.CommEvent // per launch: modeled cost (ReadyAt filled by finish)
	readyFrac []float64           // per launch: backward progress when the bucket was ready
	cumElems  int
	commWall  time.Duration // real time spent blocked inside collective launches
	totalCost time.Duration // sum of modeled bucket costs this step
	stepBytes int64
}

func newBucketSyncer(w *cluster.Worker, buckets []GradBucket) *bucketSyncer {
	s := &bucketSyncer{
		w:         w,
		buckets:   buckets,
		bucketOf:  make(map[*autograd.Variable]int),
		remaining: make([]int, len(buckets)),
		launched:  make([]bool, len(buckets)),
		flat:      make([][]float64, len(buckets)),
	}
	for bi, b := range buckets {
		for _, p := range b.Params {
			s.bucketOf[p.V] = bi
		}
		s.totalElems += b.Elems
	}
	return s
}

// reset prepares the syncer for the next step.
func (s *bucketSyncer) reset() {
	for bi := range s.buckets {
		s.remaining[bi] = len(s.buckets[bi].Params)
		s.launched[bi] = false
	}
	s.order = s.order[:0]
	s.events = s.events[:0]
	s.readyFrac = s.readyFrac[:0]
	s.cumElems = 0
	s.commWall = 0
	s.totalCost = 0
	s.stepBytes = 0
}

// onGradReady is the autograd.GradHook: count down the leaf's bucket and
// launch it once every member gradient is final. Launch order is a
// deterministic function of the (identical) replica graphs, so all workers
// issue matching collectives.
func (s *bucketSyncer) onGradReady(leaf *autograd.Variable) {
	bi, ok := s.bucketOf[leaf]
	if !ok {
		return
	}
	s.remaining[bi]--
	if s.remaining[bi] == 0 {
		s.launch(bi)
	}
}

// launch flattens bucket bi and issues its clock-deferred ring AllReduce.
func (s *bucketSyncer) launch(bi int) {
	b := s.buckets[bi]
	s.flat[bi] = FlattenGrads(b.Params, s.flat[bi])
	t0 := time.Now()
	cost := s.w.AsyncRingAllReduceMean(s.flat[bi])
	s.commWall += time.Since(t0)
	s.launched[bi] = true
	s.cumElems += b.Elems
	s.order = append(s.order, bi)
	s.events = append(s.events, cluster.CommEvent{Cost: cost})
	s.readyFrac = append(s.readyFrac, float64(s.cumElems)/float64(s.totalElems))
	s.totalCost += cost
	s.stepBytes += int64(len(s.flat[bi])) * 8
}

// flush launches every bucket the backward pass never completed (parameters
// outside the step's graph contribute zero gradients), in bucket order, and
// scatters all averaged buckets back into the parameter gradients.
func (s *bucketSyncer) flush() {
	for bi := range s.buckets {
		if !s.launched[bi] {
			s.launch(bi)
		}
	}
	for bi, b := range s.buckets {
		UnflattenGrads(b.Params, s.flat[bi])
	}
}

// finish converts the step's launch timeline into the overlapped virtual
// duration: bucket i's collective becomes ready readyFrac[i] of the way
// through backward (backward spans the last backwardShare of compute), the
// collectives serialize on one communication channel, and the step ends at
// max(compute, last comm finish). Returns the total step duration and the
// exposed (non-hidden) communication tail.
func (s *bucketSyncer) finish(compute time.Duration) (step, exposed time.Duration) {
	fwd := time.Duration((1 - backwardShare) * float64(compute))
	bwd := compute - fwd
	for i := range s.events {
		s.events[i].ReadyAt = fwd + time.Duration(s.readyFrac[i]*float64(bwd))
	}
	step = cluster.OverlapFinish(compute, s.events)
	return step, step - compute
}

// Train runs distributed data-parallel training of factory-built replicas
// over the index dataset. All workers see identical initialization and the
// deterministic sampler schedule, so the run is reproducible bit-for-bit.
func Train(data *batching.IndexDataset, split batching.Split, factory ModelFactory, cfg Config) (*Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ddp: need >= 1 worker, got %d", cfg.Workers)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("ddp: need batch size >= 1, got %d", cfg.BatchSize)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("ddp: need >= 1 epoch, got %d", cfg.Epochs)
	}
	if cfg.Store != nil && cfg.RemoteFetch {
		return nil, fmt.Errorf("ddp: Store and RemoteFetch are mutually exclusive data paths")
	}
	if cfg.Store != nil && cfg.Store.Workers() != cfg.Workers {
		return nil, fmt.Errorf("ddp: store partitioned for %d workers, run has %d", cfg.Store.Workers(), cfg.Workers)
	}
	if len(split.Train) < cfg.Workers {
		return nil, fmt.Errorf("ddp: %d training snapshots cannot feed %d workers", len(split.Train), cfg.Workers)
	}
	clu, err := cluster.New(cluster.Config{Workers: cfg.Workers, Net: cfg.Net})
	if err != nil {
		return nil, err
	}

	lr := cfg.LR
	if lr <= 0 {
		lr = 0.01
	}
	if cfg.UseLRScaling {
		lr = nn.ScaleLR(lr, cfg.Workers)
	}

	type workerOut struct {
		curve    metrics.Curve
		vt       time.Duration
		comm     time.Duration
		hidden   time.Duration
		bytes    int64
		steps    int
		buckets  int
		checksum float64
	}
	outs := make([]workerOut, cfg.Workers)

	net := clu.Net()
	runErr := clu.Run(func(w *cluster.Worker) error {
		rank := w.Rank()
		model := factory(cfg.Seed)
		params := model.Parameters()
		opt := nn.NewAdam(model, lr)
		sampler := newSampler(cfg.Sampler, split.Train, cfg.BatchSize, cfg.Workers, rank, cfg.Seed)
		var buf batching.BatchBuffer
		var gradBuf []float64
		var comm, hidden time.Duration
		var curve metrics.Curve
		var totalBytes int64
		steps := 0

		// Bucketed overlap only pays off with real peers; a single worker
		// has nothing to exchange and keeps the plain path.
		overlap := cfg.Sync == SyncBucketedOverlap && cfg.Workers > 1
		var syncer *bucketSyncer
		buckets := 1
		if overlap {
			syncer = newBucketSyncer(w, BucketGrads(params, cfg.BucketBytes))
			buckets = len(syncer.buckets)
		}

		// Per-batch byte volume for the baseline-DDP fetch path: x and y.
		n, f := data.Data.Dim(1), data.Data.Dim(2)
		batchBytes := int64(cfg.BatchSize) * int64(2*data.Horizon) * int64(n) * int64(f) * 8

		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			batches := sampler.EpochBatches(epoch)
			// Equalize step counts across workers so collectives line up.
			stepsThisEpoch := int(w.AllReduceScalar(float64(len(batches)), cluster.OpMin))
			var trainAcc metrics.Running
			for s := 0; s < stepsThisEpoch; s++ {
				idx := batches[s]
				var x, y *tensor.Tensor
				if cfg.Store != nil {
					var remote int64
					x, y, _, remote = cfg.Store.FetchBatch(rank, idx, &buf)
					if remote > 0 {
						w.FetchRemote(remote)
						comm += net.FetchTime(remote)
					}
				} else if cfg.RemoteFetch {
					w.FetchRemote(batchBytes)
					comm += net.FetchTime(batchBytes)
				}
				start := time.Now()
				if cfg.Store == nil {
					x, y = data.AssembleBatch(idx, &buf)
				}
				target := y.Slice(3, 0, 1).Contiguous()
				pred := model.Forward(autograd.Constant(x))
				loss := autograd.MAELoss(pred, target)
				if overlap {
					// Bucketed overlapping sync: bucket AllReduces launch
					// from the gradient-ready hook while backward still
					// runs; the clock charges max(compute, pipelined comm).
					syncer.reset()
					if err := autograd.BackwardHooked(loss, syncer.onGradReady); err != nil {
						return fmt.Errorf("ddp: rank %d backward: %w", rank, err)
					}
					syncer.flush()
					// Gradients are now globally averaged; clipping acts on
					// the averaged gradients (torch-DDP semantics).
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(model, cfg.ClipNorm)
					}
					var compute time.Duration
					if cfg.ComputeCost != nil {
						compute = cfg.ComputeCost(len(idx))
					} else {
						// Real elapsed minus the wall time spent blocked in
						// collective launches (that is comm, not compute).
						compute = time.Since(start) - syncer.commWall
						if compute < 0 {
							compute = 0
						}
					}
					step, exposed := syncer.finish(compute)
					w.AdvanceTime(step)
					w.Barrier() // straggler wait, as the synchronous step ends
					comm += exposed
					hidden += syncer.totalCost - exposed
					totalBytes += syncer.stepBytes
				} else {
					// Flatten baseline: one monolithic AllReduce after
					// backward, communication fully exposed.
					if err := autograd.Backward(loss); err != nil {
						return fmt.Errorf("ddp: rank %d backward: %w", rank, err)
					}
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(model, cfg.ClipNorm)
					}
					if cfg.ComputeCost != nil {
						w.AdvanceTime(cfg.ComputeCost(len(idx)))
					} else {
						w.AdvanceTime(time.Since(start))
					}
					gradBuf = FlattenGrads(params, gradBuf)
					w.RingAllReduceMean(gradBuf)
					// Attribute the modeled collective cost (the clock delta
					// additionally contains straggler wait, which is compute
					// imbalance, not communication).
					if cfg.Workers > 1 {
						comm += net.RingAllReduceTime(int64(len(gradBuf))*8, cfg.Workers)
					}
					totalBytes += int64(len(gradBuf)) * 8
					UnflattenGrads(params, gradBuf)
				}
				opt.Step()
				steps++
				// Report in the signal's original units, like validation.
				trainAcc.Add(loss.Value.Item()*data.Std, len(idx))
			}
			// Epoch metrics: weighted AllReduce of train loss and val MAE
			// (the validation AllReduce the paper lists as DDP overhead).
			trainMAE := reduceWeighted(w, trainAcc)
			valMAE := evaluateShard(w, model, data, split.Val, cfg.BatchSize, &buf)
			curve = append(curve, metrics.EpochRecord{Epoch: epoch, TrainMAE: trainMAE, ValMAE: valMAE})
		}
		var checksum float64
		for _, p := range params {
			checksum += p.Tensor().SumAll()
		}
		w.Barrier()
		outs[rank] = workerOut{curve: curve, vt: w.VirtualTime(), comm: comm, hidden: hidden, bytes: totalBytes, steps: steps, buckets: buckets, checksum: checksum}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	// Replicas must have remained identical.
	for r := 1; r < cfg.Workers; r++ {
		if outs[r].checksum != outs[0].checksum {
			return nil, fmt.Errorf("ddp: replica divergence: rank %d checksum %v vs rank 0 %v", r, outs[r].checksum, outs[0].checksum)
		}
	}
	return &Result{
		Curve:          outs[0].curve,
		VirtualTime:    outs[0].vt,
		CommTime:       outs[0].comm,
		CommHiddenTime: outs[0].hidden,
		GradSyncBytes:  outs[0].bytes,
		Steps:          outs[0].steps,
		GradBuckets:    outs[0].buckets,
		GlobalBatch:    cfg.BatchSize * cfg.Workers,
	}, nil
}

// newSampler builds the worker-local batch sampler for the strategy.
func newSampler(kind SamplerKind, train []int, batchSize, workers, rank int, seed uint64) batching.BatchSampler {
	switch kind {
	case LocalShuffle:
		return batching.NewLocalShuffler(train, batchSize, workers, rank, seed)
	case BatchShuffle:
		return batching.NewBatchShuffler(train, batchSize, workers, rank, seed)
	default:
		return batching.NewGlobalShuffler(train, batchSize, workers, rank, seed)
	}
}

// reduceWeighted AllReduces a weighted Running accumulator into the global
// weighted mean.
func reduceWeighted(w *cluster.Worker, acc metrics.Running) float64 {
	sum := w.AllReduceScalar(acc.Mean()*float64(acc.Count()), cluster.OpSum)
	count := w.AllReduceScalar(float64(acc.Count()), cluster.OpSum)
	if count == 0 {
		return 0
	}
	return sum / count
}

// evaluateShard computes this worker's share of the validation MAE and
// AllReduces the weighted mean (in original units, un-z-scored).
func evaluateShard(w *cluster.Worker, model nn.SeqModel, data *batching.IndexDataset, val []int, batchSize int, buf *batching.BatchBuffer) float64 {
	lo, hi := batching.PartitionRange(len(val), w.Size(), w.Rank())
	var acc metrics.Running
	for _, batch := range batching.Batches(val[lo:hi], batchSize) {
		x, y := data.AssembleBatch(batch, buf)
		target := y.Slice(3, 0, 1).Contiguous()
		pred := model.Forward(autograd.Constant(x))
		// Report MAE in the signal's original units.
		acc.Add(metrics.MAE(pred.Value, target)*data.Std, len(batch))
	}
	return reduceWeighted(w, acc)
}
