package ddp

import (
	"math"
	"testing"
	"time"

	"pgti/internal/cluster"
	"pgti/internal/nn"
)

// slowFabric is a bandwidth-constrained inter-node network that makes the
// modeled communication dominate the modeled compute, so collective-cost
// assertions are robust to measured-timeline jitter.
var slowFabric = cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond}

// TestDeterminismAcrossAlgosAndWorkers is the determinism regression suite:
// the same Config.Seed must produce a bit-identical loss curve run-to-run
// for every worker count (locking in the rank-ordered time-barrier
// reduction at >2 workers), and at two workers — where fp64 summation is
// order-independent — the flat, ring, and hierarchical algorithms must
// produce bitwise-identical curves.
func TestDeterminismAcrossAlgosAndWorkers(t *testing.T) {
	data, split, factory := testSetup(t, 90, 6, 3)
	for _, workers := range []int{2, 3, 4} {
		cfg := Config{
			Workers: workers, BatchSize: 3, Epochs: 2, LR: 0.01, Seed: 17,
			BucketBytes: 512, // force several buckets
		}
		a, err := Train(data, split, factory, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := Train(data, split, factory, cfg)
		if err != nil {
			t.Fatalf("workers=%d rerun: %v", workers, err)
		}
		for i := range a.Curve {
			if a.Curve[i] != b.Curve[i] {
				t.Fatalf("workers=%d: curve not bit-identical at epoch %d: %+v vs %+v", workers, i, a.Curve[i], b.Curve[i])
			}
		}
	}

	// Two-worker cross-algorithm equivalence at fp64: averaging two replicas
	// is the same sum in any order, so the collective algorithm must not
	// change a single bit of the trajectory.
	curves := map[GradAlgo][]float64{}
	for _, algo := range []GradAlgo{GradAlgoFlat, GradAlgoRing, GradAlgoHierarchical} {
		cfg := Config{
			Workers: 2, BatchSize: 3, Epochs: 2, LR: 0.01, Seed: 17,
			Algo: algo, Topology: cluster.Topology{GPUsPerNode: 2}, BucketBytes: 512,
		}
		res, err := Train(data, split, factory, cfg)
		if err != nil {
			t.Fatalf("algo=%v: %v", algo, err)
		}
		for _, rec := range res.Curve {
			curves[algo] = append(curves[algo], rec.TrainMAE, rec.ValMAE)
		}
		if res.Algo != algo {
			t.Fatalf("result reports algo %v, want %v", res.Algo, algo)
		}
	}
	for algo, c := range curves {
		for i := range c {
			if c[i] != curves[GradAlgoFlat][i] {
				t.Fatalf("algo %v diverges from flat at curve point %d: %v vs %v", algo, i, c[i], curves[GradAlgoFlat][i])
			}
		}
	}
}

// TestHierarchicalBeatsRingDDP is the acceptance property: with 8 workers
// laid out as Topology{2,4}, the hierarchical AllReduce's modeled
// communication cost — and with it the epoch virtual time — must undercut
// the flat ring, which pays every hop at fabric bandwidth.
func TestHierarchicalBeatsRingDDP(t *testing.T) {
	data, split, factory := testSetup(t, 120, 6, 3)
	paramBytes := nn.ParameterBytes(factory(9))
	base := Config{
		Workers: 8, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 9, Net: slowFabric,
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
		BucketBytes: paramBytes / 4,
	}

	ringCfg := base
	ringCfg.Algo = GradAlgoRing
	ring, err := Train(data, split, factory, ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	hierCfg := base
	hierCfg.Algo = GradAlgoHierarchical
	hierCfg.Topology = cluster.Topology{Nodes: 2, GPUsPerNode: 4}
	hier, err := Train(data, split, factory, hierCfg)
	if err != nil {
		t.Fatal(err)
	}

	if hier.CommTime >= ring.CommTime {
		t.Fatalf("hierarchical exposed comm %v must beat flat ring %v", hier.CommTime, ring.CommTime)
	}
	if ht, rt := hier.CommTime+hier.CommHiddenTime, ring.CommTime+ring.CommHiddenTime; ht >= rt {
		t.Fatalf("hierarchical total comm %v must beat flat ring %v", ht, rt)
	}
	if hier.VirtualTime >= ring.VirtualTime {
		t.Fatalf("hierarchical epoch %v must beat flat ring %v", hier.VirtualTime, ring.VirtualTime)
	}
	// Same traffic, same learning (up to summation-order noise).
	if hier.GradSyncBytes != ring.GradSyncBytes {
		t.Fatalf("gradient traffic differs: %d vs %d", hier.GradSyncBytes, ring.GradSyncBytes)
	}
	if d := hier.Curve[0].TrainMAE - ring.Curve[0].TrainMAE; math.Abs(d) > 1e-9 {
		t.Fatalf("collective algorithm changed the numerics: ΔMAE %v", d)
	}
}

// TestFP16BucketsHalveTrafficAndStayAccurate verifies the compressed wire
// path: half the gradient bytes, a faster modeled epoch on a
// bandwidth-constrained fabric, replicas bitwise identical (checked inside
// Train), learning within quantization noise of fp64, and bit-reproducible
// across reruns.
func TestFP16BucketsHalveTrafficAndStayAccurate(t *testing.T) {
	data, split, factory := testSetup(t, 100, 6, 3)
	base := Config{
		Workers: 4, BatchSize: 3, Epochs: 2, LR: 0.01, Seed: 21, Net: slowFabric,
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
		BucketBytes: 512,
	}
	full, err := Train(data, split, factory, base)
	if err != nil {
		t.Fatal(err)
	}
	halfCfg := base
	halfCfg.FP16 = true
	half, err := Train(data, split, factory, halfCfg)
	if err != nil {
		t.Fatal(err)
	}

	// fp16 ships 2 bytes per element against the simulator's 8-byte fp64
	// wire: a 4x reduction (half of a real fp32 wire).
	if half.GradSyncBytes*4 != full.GradSyncBytes {
		t.Fatalf("fp16 wire bytes %d must be a quarter of %d", half.GradSyncBytes, full.GradSyncBytes)
	}
	if half.CommBytesSaved != full.GradSyncBytes-half.GradSyncBytes {
		t.Fatalf("CommBytesSaved %d, want %d", half.CommBytesSaved, full.GradSyncBytes-half.GradSyncBytes)
	}
	if full.CommBytesSaved != 0 {
		t.Fatalf("fp64 run must save nothing, got %d", full.CommBytesSaved)
	}
	if half.VirtualTime >= full.VirtualTime {
		t.Fatalf("fp16 epoch %v must beat fp64 %v on a bandwidth-bound fabric", half.VirtualTime, full.VirtualTime)
	}
	// Learning stays within quantization noise.
	for i := range full.Curve {
		if d := math.Abs(half.Curve[i].TrainMAE - full.Curve[i].TrainMAE); d > 0.05 {
			t.Fatalf("epoch %d: fp16 diverged from fp64 by %v", i, d)
		}
	}
	// Quantization is deterministic: reruns are bit-identical.
	again, err := Train(data, split, factory, halfCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range half.Curve {
		if half.Curve[i] != again.Curve[i] {
			t.Fatalf("fp16 run not deterministic at epoch %d", i)
		}
	}

	// The flat baseline ships compressed too.
	flatCfg := base
	flatCfg.FP16 = true
	flatCfg.Algo = GradAlgoFlat
	flat, err := Train(data, split, factory, flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if flat.CommBytesSaved == 0 || flat.GradSyncBytes != half.GradSyncBytes {
		t.Fatalf("flat fp16 traffic %d (saved %d) inconsistent with bucketed %d", flat.GradSyncBytes, flat.CommBytesSaved, half.GradSyncBytes)
	}
}

func TestAutotuneCandidatesLadder(t *testing.T) {
	// Slingshot: 20 GB/s * 2 us = 40 KB knee, floored to 32 KiB.
	c := AutotuneCandidates(cluster.SlingshotModel(), 100<<20)
	if len(c) < 2 || c[0] != 32<<10 {
		t.Fatalf("Slingshot ladder starts at %d with %d rungs, want 32768 start", c[0], len(c))
	}
	if c[len(c)-1] != 100<<20 {
		t.Fatal("ladder must end at the full gradient size")
	}
	for i := 1; i < len(c)-1; i++ {
		if c[i] != 2*c[i-1] {
			t.Fatalf("ladder must double: %v", c)
		}
	}
	if len(c) > 8 {
		t.Fatalf("ladder too long: %d", len(c))
	}
	// A gradient smaller than the knee gets a single candidate.
	if c := AutotuneCandidates(cluster.SlingshotModel(), 1000); len(c) != 1 || c[0] != 1000 {
		t.Fatalf("tiny gradient ladder %v", c)
	}
}

// TestAutotunerLocksACandidate verifies the first-epoch sweep: the run ends
// on a ladder candidate, reports its bucket count, stays replica-identical
// (checked inside Train), and — with a modeled compute cost — makes the
// same choice on every rerun.
func TestAutotunerLocksACandidate(t *testing.T) {
	data, split, factory := testSetup(t, 120, 6, 3)
	paramBytes := nn.ParameterBytes(factory(1))
	cfg := Config{
		Workers: 4, BatchSize: 2, Epochs: 2, LR: 0.01, Seed: 23, Net: slowFabric,
		ComputeCost:     func(int) time.Duration { return 2 * time.Millisecond },
		AutoTuneBuckets: true,
	}
	res, err := Train(data, split, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	candidates := AutotuneCandidates(slowFabric, paramBytes)
	found := false
	for _, c := range candidates {
		if res.BucketBytes == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen bucket size %d not in candidate ladder %v", res.BucketBytes, candidates)
	}
	if res.GradBuckets < 1 {
		t.Fatalf("bucket count %d", res.GradBuckets)
	}

	again, err := Train(data, split, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.BucketBytes != res.BucketBytes {
		t.Fatalf("autotuner not reproducible: %d vs %d", again.BucketBytes, res.BucketBytes)
	}
	for i := range res.Curve {
		if res.Curve[i] != again.Curve[i] {
			t.Fatalf("autotuned run not deterministic at epoch %d", i)
		}
	}

	// Without autotuning the report echoes the configured cap.
	fixed := cfg
	fixed.AutoTuneBuckets = false
	fixed.BucketBytes = 2048
	fres, err := Train(data, split, factory, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if fres.BucketBytes != 2048 {
		t.Fatalf("fixed run reports bucket bytes %d, want 2048", fres.BucketBytes)
	}
}
