package autograd

import (
	"testing"

	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// singleShardExchange is the degenerate single-shard HaloExchange: no halo,
// no peers, zero remote gradient contributions. The op must still invoke
// both hooks (the interface contract), so it counts its calls.
type singleShardExchange struct {
	own               int
	gathers, scatters int
}

func (e *singleShardExchange) NumHalo() int { return 0 }
func (e *singleShardExchange) Gather(local *tensor.Tensor) *tensor.Tensor {
	e.gathers++
	return tensor.New(0, local.Dim(1))
}
func (e *singleShardExchange) ScatterAdd(haloGrad *tensor.Tensor) *tensor.Tensor {
	e.scatters++
	return tensor.New(e.own, haloGrad.Dim(1))
}

// TestShardSpMMSingleShardMatchesSpMM: with the whole graph on one shard,
// ShardSpMM must agree with SpMM in both forward values and gradients, and
// must still drive the exchange hooks once per pass.
func TestShardSpMMSingleShardMatchesSpMM(t *testing.T) {
	n, f := 7, 3
	rng := tensor.NewRNG(2)
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 1) % n, Val: rng.Float64()})
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 1})
	}
	m, err := sparse.FromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	xv := tensor.Randn(rng, n, f)

	ref := NewVariable(xv.Clone())
	refOut := SpMM(m, ref)
	if err := Backward(SumAll(refOut)); err != nil {
		t.Fatal(err)
	}

	ex := &singleShardExchange{own: n}
	x := NewVariable(xv.Clone())
	out := ShardSpMM(m, ex, x)
	if err := Backward(SumAll(out)); err != nil {
		t.Fatal(err)
	}

	if !out.Value.AllClose(refOut.Value, 1e-12) {
		t.Fatal("forward mismatch vs SpMM")
	}
	if !x.Grad.AllClose(ref.Grad, 1e-12) {
		t.Fatal("gradient mismatch vs SpMM")
	}
	if ex.gathers != 1 || ex.scatters != 1 {
		t.Fatalf("exchange hooks ran %d/%d times, want 1/1", ex.gathers, ex.scatters)
	}
}

// fakeAsyncExchange is a deterministic in-process AsyncHaloExchange: it
// serves fixed halo rows and records peers' contributions as zeros, with a
// switch between the blocking and split-phase schedules, so the two
// ShardSpMM paths can be compared bitwise without a cluster.
type fakeAsyncExchange struct {
	own, halo int
	haloRows  *tensor.Tensor // [halo, F] served by Gather
	overlap   bool
	scatterF  int // F seen by ScatterAddStart, echoed by Finish
	inFlight  int // Start/Finish pairing check
	calls     []string
}

func (e *fakeAsyncExchange) NumHalo() int  { return e.halo }
func (e *fakeAsyncExchange) Overlap() bool { return e.overlap }
func (e *fakeAsyncExchange) Gather(local *tensor.Tensor) *tensor.Tensor {
	e.calls = append(e.calls, "gather")
	return e.haloRows.Clone()
}
func (e *fakeAsyncExchange) ScatterAdd(haloGrad *tensor.Tensor) *tensor.Tensor {
	e.calls = append(e.calls, "scatter")
	return tensor.New(e.own, haloGrad.Dim(1))
}
func (e *fakeAsyncExchange) GatherStart(local *tensor.Tensor) {
	e.calls = append(e.calls, "gatherStart")
	e.inFlight++
}
func (e *fakeAsyncExchange) GatherFinish() *tensor.Tensor {
	e.calls = append(e.calls, "gatherFinish")
	e.inFlight--
	return e.haloRows.Clone()
}
func (e *fakeAsyncExchange) ScatterAddStart(haloGrad *tensor.Tensor) {
	e.calls = append(e.calls, "scatterStart")
	e.scatterF = haloGrad.Dim(1)
	e.inFlight++
}
func (e *fakeAsyncExchange) ScatterAddFinish() *tensor.Tensor {
	e.calls = append(e.calls, "scatterFinish")
	e.inFlight--
	return tensor.New(e.own, e.scatterF)
}

// TestShardSpMMOverlapBitwise: the interior-first split-phase schedule must
// reproduce the blocking schedule's forward values and input gradients
// bit-for-bit, for blocks with and without halo columns.
func TestShardSpMMOverlapBitwise(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, halo := range []int{0, 5} {
		nOwn, f := 11, 4
		cols := nOwn + halo
		var entries []sparse.Coord
		for i := 0; i < nOwn; i++ {
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 1})
			entries = append(entries, sparse.Coord{Row: i, Col: (i * 3) % cols, Val: rng.Float64()})
			if halo > 0 && i%3 == 0 {
				entries = append(entries, sparse.Coord{Row: i, Col: nOwn + i%halo, Val: rng.Float64()})
			}
		}
		block, err := sparse.FromCOO(nOwn, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		xv := tensor.Randn(rng, nOwn, f)
		haloRows := tensor.Randn(rng, halo, f)

		run := func(overlap bool) (*tensor.Tensor, *tensor.Tensor, *fakeAsyncExchange) {
			ex := &fakeAsyncExchange{own: nOwn, halo: halo, haloRows: haloRows, overlap: overlap}
			x := NewVariable(xv.Clone())
			out := ShardSpMM(block, ex, x)
			if err := Backward(SumAll(out)); err != nil {
				t.Fatal(err)
			}
			return out.Value, x.Grad, ex
		}
		blockOut, blockGrad, bex := run(false)
		overOut, overGrad, oex := run(true)

		bo, oo := blockOut.Contiguous().Data(), overOut.Contiguous().Data()
		for i := range bo {
			if bo[i] != oo[i] {
				t.Fatalf("halo=%d: forward element %d differs bitwise: %v vs %v", halo, i, oo[i], bo[i])
			}
		}
		bg, og := blockGrad.Contiguous().Data(), overGrad.Contiguous().Data()
		for i := range bg {
			if bg[i] != og[i] {
				t.Fatalf("halo=%d: gradient element %d differs bitwise: %v vs %v", halo, i, og[i], bg[i])
			}
		}
		// Schedules: blocking never touches the split-phase hooks and vice
		// versa; every Start is matched by its Finish.
		if got := len(bex.calls); got != 2 || bex.calls[0] != "gather" || bex.calls[1] != "scatter" {
			t.Fatalf("halo=%d: blocking calls %v", halo, bex.calls)
		}
		want := []string{"gatherStart", "gatherFinish", "scatterStart", "scatterFinish"}
		if len(oex.calls) != len(want) {
			t.Fatalf("halo=%d: overlapped calls %v", halo, oex.calls)
		}
		for i := range want {
			if oex.calls[i] != want[i] {
				t.Fatalf("halo=%d: overlapped calls %v", halo, oex.calls)
			}
		}
		if oex.inFlight != 0 {
			t.Fatalf("halo=%d: unbalanced Start/Finish: %d", halo, oex.inFlight)
		}
	}
}
