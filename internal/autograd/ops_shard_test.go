package autograd

import (
	"testing"

	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// singleShardExchange is the degenerate single-shard HaloExchange: no halo,
// no peers, zero remote gradient contributions. The op must still invoke
// both hooks (the interface contract), so it counts its calls.
type singleShardExchange struct {
	own               int
	gathers, scatters int
}

func (e *singleShardExchange) NumHalo() int { return 0 }
func (e *singleShardExchange) Gather(local *tensor.Tensor) *tensor.Tensor {
	e.gathers++
	return tensor.New(0, local.Dim(1))
}
func (e *singleShardExchange) ScatterAdd(haloGrad *tensor.Tensor) *tensor.Tensor {
	e.scatters++
	return tensor.New(e.own, haloGrad.Dim(1))
}

// TestShardSpMMSingleShardMatchesSpMM: with the whole graph on one shard,
// ShardSpMM must agree with SpMM in both forward values and gradients, and
// must still drive the exchange hooks once per pass.
func TestShardSpMMSingleShardMatchesSpMM(t *testing.T) {
	n, f := 7, 3
	rng := tensor.NewRNG(2)
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 1) % n, Val: rng.Float64()})
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 1})
	}
	m, err := sparse.FromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	xv := tensor.Randn(rng, n, f)

	ref := NewVariable(xv.Clone())
	refOut := SpMM(m, ref)
	if err := Backward(SumAll(refOut)); err != nil {
		t.Fatal(err)
	}

	ex := &singleShardExchange{own: n}
	x := NewVariable(xv.Clone())
	out := ShardSpMM(m, ex, x)
	if err := Backward(SumAll(out)); err != nil {
		t.Fatal(err)
	}

	if !out.Value.AllClose(refOut.Value, 1e-12) {
		t.Fatal("forward mismatch vs SpMM")
	}
	if !x.Grad.AllClose(ref.Grad, 1e-12) {
		t.Fatal("gradient mismatch vs SpMM")
	}
	if ex.gathers != 1 || ex.scatters != 1 {
		t.Fatalf("exchange hooks ran %d/%d times, want 1/1", ex.gathers, ex.scatters)
	}
}
