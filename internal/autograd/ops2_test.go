package autograd

import (
	"math"
	"testing"

	"pgti/internal/tensor"
)

func TestGradDiv(t *testing.T) {
	rng := tensor.NewRNG(21)
	a := leaf(rng, 3, 3)
	b := NewVariable(tensor.Randn(rng, 3, 3).Apply(func(v float64) float64 { return v + 3 })) // keep away from 0
	gradCheck(t, "div", []*Variable{a, b}, func(ins []*Variable) *Variable {
		return MeanAll(Div(ins[0], ins[1]))
	}, 1e-4)
}

func TestGradDivBroadcast(t *testing.T) {
	rng := tensor.NewRNG(22)
	a := leaf(rng, 2, 4)
	b := NewVariable(tensor.Rand(rng, 4).AddScalar(1))
	gradCheck(t, "divBroadcast", []*Variable{a, b}, func(ins []*Variable) *Variable {
		return MeanAll(Div(ins[0], ins[1]))
	}, 1e-4)
}

func TestGradExpLogSqrtPow(t *testing.T) {
	rng := tensor.NewRNG(23)
	pos := NewVariable(tensor.Rand(rng, 3, 3).AddScalar(0.5))
	gradCheck(t, "exp", []*Variable{leaf(rng, 3, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Exp(ins[0]))
	}, 1e-4)
	gradCheck(t, "log", []*Variable{pos}, func(ins []*Variable) *Variable {
		return MeanAll(Log(ins[0]))
	}, 1e-4)
	pos2 := NewVariable(tensor.Rand(tensor.NewRNG(24), 3, 3).AddScalar(0.5))
	gradCheck(t, "sqrt", []*Variable{pos2}, func(ins []*Variable) *Variable {
		return MeanAll(Sqrt(ins[0]))
	}, 1e-4)
	pos3 := NewVariable(tensor.Rand(tensor.NewRNG(25), 3, 3).AddScalar(0.5))
	gradCheck(t, "pow", []*Variable{pos3}, func(ins []*Variable) *Variable {
		return MeanAll(Pow(ins[0], 2.5))
	}, 1e-4)
}

func TestGradSumMeanAxis(t *testing.T) {
	rng := tensor.NewRNG(26)
	w := Constant(tensor.Randn(tensor.NewRNG(27), 4))
	gradCheck(t, "sumAxis", []*Variable{leaf(rng, 3, 4)}, func(ins []*Variable) *Variable {
		return SumAll(Mul(SumAxis(ins[0], 0), w))
	}, 1e-5)
	gradCheck(t, "meanAxis", []*Variable{leaf(rng, 3, 4)}, func(ins []*Variable) *Variable {
		return SumAll(MeanAxis(ins[0], 1))
	}, 1e-5)
}

func TestGradBMM(t *testing.T) {
	rng := tensor.NewRNG(28)
	gradCheck(t, "bmm", []*Variable{leaf(rng, 2, 3, 2), leaf(rng, 2, 2, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(BMM(ins[0], ins[1]))
	}, 1e-4)
}

func TestBMMValueMatchesMatMul(t *testing.T) {
	rng := tensor.NewRNG(29)
	a := tensor.Randn(rng, 3, 4, 5)
	b := tensor.Randn(rng, 3, 5, 2)
	out := BMM(Constant(a), Constant(b))
	for i := 0; i < 3; i++ {
		want := tensor.MatMul(a.Index(0, i), b.Index(0, i))
		if !out.Value.Index(0, i).AllClose(want, 1e-12) {
			t.Fatalf("BMM value wrong at batch %d", i)
		}
	}
}

func TestGradClamp(t *testing.T) {
	// Values away from the boundaries so finite differences are valid.
	vals := tensor.FromSlice([]float64{-2, -0.5, 0.3, 2.5}, 4)
	v := NewVariable(vals)
	y := SumAll(Clamp(v, -1, 1))
	if err := Backward(y); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 0}
	for i, wv := range want {
		if v.Grad.At(i) != wv {
			t.Fatalf("clamp grad[%d] = %v want %v", i, v.Grad.At(i), wv)
		}
	}
}

func TestDropout(t *testing.T) {
	rng := tensor.NewRNG(30)
	x := NewVariable(tensor.Ones(1000))
	y := Dropout(x, 0.4, rng)
	// Expectation preserved by inverted scaling.
	mean := y.Value.MeanAll()
	if math.Abs(mean-1) > 0.12 {
		t.Fatalf("dropout mean %v should stay near 1", mean)
	}
	zeros := 0
	for _, v := range y.Value.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 || zeros > 500 {
		t.Fatalf("dropout zeroed %d of 1000, expected ~400", zeros)
	}
	// Gradient flows only through survivors, scaled.
	if err := Backward(SumAll(y)); err != nil {
		t.Fatal(err)
	}
	for i, v := range y.Value.Data() {
		if (v == 0) != (x.Grad.At(i) == 0) {
			t.Fatal("dropout gradient mask mismatch")
		}
	}
	// p=0 is identity.
	if Dropout(x, 0, rng) != x {
		t.Fatal("p=0 dropout must be identity")
	}
}

func TestDropoutPanicsOnP1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dropout(NewVariable(tensor.Ones(2)), 1, tensor.NewRNG(1))
}

func TestGradHuber(t *testing.T) {
	rng := tensor.NewRNG(31)
	target := tensor.Randn(tensor.NewRNG(32), 4, 3)
	gradCheck(t, "huber", []*Variable{leaf(rng, 4, 3)}, func(ins []*Variable) *Variable {
		return HuberLoss(ins[0], target, 0.7)
	}, 1e-4)
}

func TestHuberMatchesMSEInQuadraticRegion(t *testing.T) {
	pred := NewVariable(tensor.FromSlice([]float64{0.1, -0.2}, 2))
	target := tensor.New(2)
	h := HuberLoss(pred, target, 10) // large delta: pure quadratic
	mse := MSELoss(NewVariable(pred.Value), target)
	if math.Abs(h.Value.Item()-0.5*mse.Value.Item()) > 1e-12 {
		t.Fatalf("huber %v vs mse/2 %v", h.Value.Item(), 0.5*mse.Value.Item())
	}
}
