package autograd

import (
	"fmt"
	"sync"

	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// HaloExchange is the communication endpoint a spatially-sharded SpMM uses
// to reach the rest of the graph. Implementations (internal/shard) move rows
// between the workers of one replica group; the op itself stays
// communication-agnostic so it can be exercised single-process in tests.
//
// Both methods MUST perform their exchange even when this shard needs no
// halo rows itself — peers may still need rows from this shard, and every
// member of the replica group issues matching calls in the same order.
type HaloExchange interface {
	// NumHalo returns the halo row count this shard gathers.
	NumHalo() int
	// Gather exchanges feature rows: it ships the locally-owned rows peers
	// need and returns the gathered halo rows [NumHalo, F] for local [own, F].
	Gather(local *tensor.Tensor) *tensor.Tensor
	// ScatterAdd reverses Gather for gradients: it ships haloGrad
	// [NumHalo, F] back to the owners and returns the peers' contributions
	// to this shard's own rows as [own, F] (zero where no peer contributed).
	ScatterAdd(haloGrad *tensor.Tensor) *tensor.Tensor
}

// AsyncHaloExchange is the split-phase extension of HaloExchange that
// interior-first overlapped SpMM drives: the Start half ships the rows peers
// need without blocking, the Finish half collects this shard's expected
// payloads. Between the two calls the op multiplies every row that does not
// depend on halo data, so the wall time the blocking exchange would spend
// waiting for peers is spent computing instead. Start/Finish pairs must not
// nest or interleave on one worker, and every member of the replica group
// issues matching pairs in the same order (the model graphs are identical,
// so this holds structurally).
type AsyncHaloExchange interface {
	HaloExchange
	// Overlap reports whether the split-phase path should be used; false
	// keeps the blocking Gather/ScatterAdd schedule (the ablation baseline).
	Overlap() bool
	// GatherStart ships the owned rows peers need (non-blocking).
	GatherStart(local *tensor.Tensor)
	// GatherFinish blocks for and returns the halo rows [NumHalo, F].
	GatherFinish() *tensor.Tensor
	// ScatterAddStart ships the halo gradient rows back to their owners
	// (non-blocking).
	ScatterAddStart(haloGrad *tensor.Tensor)
	// ScatterAddFinish blocks for and returns the peers' summed
	// contributions to this shard's own rows as [own, F].
	ScatterAddFinish() *tensor.Tensor
}

// shardSplit caches the row partitions one sharded block needs for the
// interior-first schedule: the forward interior/frontier split of the block
// rows and the transposed block (whose backward mirror computes the halo
// row range [nOwn, ColsN) first so the reverse exchange can launch, then
// the own range [0, nOwn) while it flies).
type shardSplit struct {
	t                  *sparse.CSR
	interior, frontier []int
}

var shardSplitCache sync.Map // *sparse.CSR -> *shardSplit

// cachedShardSplit resolves the block's split, preferring the Interior/
// Frontier partition a sparse.ShardCSR already carries (block != nil) over
// re-deriving it from the sparsity pattern. Like the transpose cache it is
// keyed per *CSR for the block's lifetime.
func cachedShardSplit(m *sparse.CSR, nOwn int, block *sparse.ShardCSR) *shardSplit {
	if s, ok := shardSplitCache.Load(m); ok {
		return s.(*shardSplit)
	}
	var interior, frontier []int
	if block != nil {
		interior, frontier = block.Interior, block.Frontier
	} else {
		interior, frontier = sparse.InteriorFrontier(m, nOwn)
	}
	sp := &shardSplit{t: cachedTranspose(m), interior: interior, frontier: frontier}
	shardSplitCache.Store(m, sp)
	return sp
}

// ShardSpMM is the spatially-partitioned sparse-dense product: local is one
// worker's re-indexed row block (columns [own | halo], see sparse.ShardCSR)
// and x holds the worker's own feature rows [own, F]. Forward gathers the
// halo rows from peer shards and multiplies the local block; backward
// propagates through the transposed block and scatter-adds the halo
// gradient rows back to their owner shards. The sparse operand is a
// constant (graph topology carries no gradient), exactly like SpMM.
//
// When ex implements AsyncHaloExchange with Overlap() true, both passes run
// the interior-first overlapped schedule: forward launches the halo exchange,
// multiplies the interior rows (all columns in [own]) while the bytes are in
// flight, and finishes the frontier rows once the halo lands; backward
// computes the transposed block's halo rows first, launches the reverse
// exchange, and multiplies the own rows under it. Because SpMM rows are
// independent and each row's accumulation order is unchanged, the overlapped
// results are bitwise identical to the blocking schedule.
func ShardSpMM(local *sparse.CSR, ex HaloExchange, x *Variable) *Variable {
	return shardSpMM(local, nil, ex, x)
}

// ShardSpMMBlock is ShardSpMM over a pre-split sparse.ShardCSR row block:
// the overlapped schedule reuses the block's Interior/Frontier partition
// instead of re-deriving it.
func ShardSpMMBlock(block *sparse.ShardCSR, ex HaloExchange, x *Variable) *Variable {
	return shardSpMM(block.Local, block, ex, x)
}

func shardSpMM(local *sparse.CSR, block *sparse.ShardCSR, ex HaloExchange, x *Variable) *Variable {
	nOwn := local.RowsN
	xs := x.Value.Shape()
	if len(xs) != 2 || xs[0] != nOwn {
		panic(fmt.Sprintf("autograd: ShardSpMM expects [%d, F] features, got %v", nOwn, xs))
	}
	if local.ColsN != nOwn+ex.NumHalo() {
		panic(fmt.Sprintf("autograd: ShardSpMM block has %d cols, want %d own + %d halo", local.ColsN, nOwn, ex.NumHalo()))
	}
	ax, overlap := ex.(AsyncHaloExchange)
	if overlap {
		overlap = ax.Overlap()
	}
	if !overlap {
		return shardSpMMBlocking(local, ex, x)
	}

	sp := cachedShardSplit(local, nOwn, block)
	f := x.Value.Dim(1)
	xc := x.Value.Contiguous()
	ax.GatherStart(xc) // always started: peers may need our rows
	out := tensor.New(nOwn, f)
	local.SpMMRowsInto(sp.interior, xc, out) // interior columns all fall in [own]
	halo := ax.GatherFinish()
	ext := xc
	if ex.NumHalo() > 0 {
		ext = tensor.Concat(0, xc, halo)
	}
	local.SpMMRowsInto(sp.frontier, ext, out)

	return newOp("shardSpMM", out, []*Variable{x}, func(grad *tensor.Tensor) []*tensor.Tensor {
		// Mirrored overlap: the transposed block's halo rows yield the halo
		// gradient, which ships while the own rows are multiplied.
		gc := grad.Contiguous()
		gext := tensor.New(local.ColsN, f)
		sp.t.SpMMRowRangeInto(nOwn, local.ColsN, gc, gext)
		var haloGrad *tensor.Tensor
		if ex.NumHalo() > 0 {
			haloGrad = gext.Slice(0, nOwn, local.ColsN).Contiguous()
		} else {
			haloGrad = tensor.New(0, f)
		}
		ax.ScatterAddStart(haloGrad)
		sp.t.SpMMRowRangeInto(0, nOwn, gc, gext)
		own := gext.Slice(0, 0, nOwn).Contiguous()
		remote := ax.ScatterAddFinish()
		return []*tensor.Tensor{tensor.Add(own, remote)}
	})
}

// shardSpMMBlocking is the gather-then-multiply baseline schedule.
func shardSpMMBlocking(local *sparse.CSR, ex HaloExchange, x *Variable) *Variable {
	nOwn := local.RowsN
	halo := ex.Gather(x.Value) // [numHalo, F]; always called: peers may need our rows
	ext := x.Value
	if ex.NumHalo() > 0 {
		ext = tensor.Concat(0, x.Value.Contiguous(), halo)
	}
	out := local.SpMM(ext)
	return newOp("shardSpMM", out, []*Variable{x}, func(grad *tensor.Tensor) []*tensor.Tensor {
		gext := cachedTranspose(local).SpMM(grad) // [own+halo, F]
		var own, haloGrad *tensor.Tensor
		if ex.NumHalo() > 0 {
			own = gext.Slice(0, 0, nOwn).Contiguous()
			haloGrad = gext.Slice(0, nOwn, local.ColsN).Contiguous()
		} else {
			own = gext
			haloGrad = tensor.New(0, grad.Dim(1))
		}
		// Peers' contributions to our own rows arrive in the reverse
		// exchange; always called, mirroring Gather.
		remote := ex.ScatterAdd(haloGrad)
		return []*tensor.Tensor{tensor.Add(own, remote)}
	})
}
