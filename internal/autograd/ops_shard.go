package autograd

import (
	"fmt"

	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// HaloExchange is the communication endpoint a spatially-sharded SpMM uses
// to reach the rest of the graph. Implementations (internal/shard) move rows
// between the workers of one replica group; the op itself stays
// communication-agnostic so it can be exercised single-process in tests.
//
// Both methods MUST perform their exchange even when this shard needs no
// halo rows itself — peers may still need rows from this shard, and every
// member of the replica group issues matching calls in the same order.
type HaloExchange interface {
	// NumHalo returns the halo row count this shard gathers.
	NumHalo() int
	// Gather exchanges feature rows: it ships the locally-owned rows peers
	// need and returns the gathered halo rows [NumHalo, F] for local [own, F].
	Gather(local *tensor.Tensor) *tensor.Tensor
	// ScatterAdd reverses Gather for gradients: it ships haloGrad
	// [NumHalo, F] back to the owners and returns the peers' contributions
	// to this shard's own rows as [own, F] (zero where no peer contributed).
	ScatterAdd(haloGrad *tensor.Tensor) *tensor.Tensor
}

// ShardSpMM is the spatially-partitioned sparse-dense product: local is one
// worker's re-indexed row block (columns [own | halo], see sparse.ShardCSR)
// and x holds the worker's own feature rows [own, F]. Forward gathers the
// halo rows from peer shards and multiplies the local block; backward
// propagates through the transposed block and scatter-adds the halo
// gradient rows back to their owner shards. The sparse operand is a
// constant (graph topology carries no gradient), exactly like SpMM.
func ShardSpMM(local *sparse.CSR, ex HaloExchange, x *Variable) *Variable {
	nOwn := local.RowsN
	xs := x.Value.Shape()
	if len(xs) != 2 || xs[0] != nOwn {
		panic(fmt.Sprintf("autograd: ShardSpMM expects [%d, F] features, got %v", nOwn, xs))
	}
	if local.ColsN != nOwn+ex.NumHalo() {
		panic(fmt.Sprintf("autograd: ShardSpMM block has %d cols, want %d own + %d halo", local.ColsN, nOwn, ex.NumHalo()))
	}
	halo := ex.Gather(x.Value) // [numHalo, F]; always called: peers may need our rows
	ext := x.Value
	if ex.NumHalo() > 0 {
		ext = tensor.Concat(0, x.Value.Contiguous(), halo)
	}
	out := local.SpMM(ext)
	return newOp("shardSpMM", out, []*Variable{x}, func(grad *tensor.Tensor) []*tensor.Tensor {
		gext := cachedTranspose(local).SpMM(grad) // [own+halo, F]
		var own, haloGrad *tensor.Tensor
		if ex.NumHalo() > 0 {
			own = gext.Slice(0, 0, nOwn).Contiguous()
			haloGrad = gext.Slice(0, nOwn, local.ColsN).Contiguous()
		} else {
			own = gext
			haloGrad = tensor.New(0, grad.Dim(1))
		}
		// Peers' contributions to our own rows arrive in the reverse
		// exchange; always called, mirroring Gather.
		remote := ex.ScatterAdd(haloGrad)
		return []*tensor.Tensor{tensor.Add(own, remote)}
	})
}
