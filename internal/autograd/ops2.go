package autograd

import (
	"fmt"
	"math"

	"pgti/internal/tensor"
)

// Div returns the element-wise quotient a / b with broadcasting.
func Div(a, b *Variable) *Variable {
	out := tensor.Div(a.Value, b.Value)
	return newOp("div", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		ga := tensor.Div(grad, b.Value)
		// d(a/b)/db = -a/b^2
		gb := tensor.Mul(grad, tensor.Div(out, b.Value)).Neg()
		return []*tensor.Tensor{
			reduceGradTo(ga, a.Value.Shape()),
			reduceGradTo(gb, b.Value.Shape()),
		}
	})
}

// Exp returns e^a element-wise.
func Exp(a *Variable) *Variable {
	out := a.Value.Exp()
	return newOp("exp", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Mul(grad, out)}
	})
}

// Log returns ln(a) element-wise.
func Log(a *Variable) *Variable {
	out := a.Value.Log()
	return newOp("log", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Div(grad, a.Value)}
	})
}

// Sqrt returns the element-wise square root.
func Sqrt(a *Variable) *Variable {
	out := a.Value.Sqrt()
	return newOp("sqrt", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		den := out.MulScalar(2)
		return []*tensor.Tensor{tensor.Div(grad, den)}
	})
}

// Pow returns a^p element-wise for a constant exponent p.
func Pow(a *Variable, p float64) *Variable {
	out := a.Value.Pow(p)
	return newOp("pow", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		d := a.Value.Pow(p - 1).MulScalar(p)
		return []*tensor.Tensor{tensor.Mul(grad, d)}
	})
}

// SumAxis reduces along axis by summation, removing the axis.
func SumAxis(a *Variable, axis int) *Variable {
	out := a.Value.Sum(axis)
	n := a.Value.Dim(axis)
	return newOp("sumAxis", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		expanded := grad.Unsqueeze(axis).BroadcastTo(insertAxis(grad.Shape(), axis, n)...)
		return []*tensor.Tensor{expanded.Clone()}
	})
}

// MeanAxis reduces along axis by arithmetic mean, removing the axis.
func MeanAxis(a *Variable, axis int) *Variable {
	n := a.Value.Dim(axis)
	return ScalarMul(SumAxis(a, axis), 1/float64(n))
}

func insertAxis(shape []int, axis, size int) []int {
	out := make([]int, 0, len(shape)+1)
	out = append(out, shape[:axis]...)
	out = append(out, size)
	out = append(out, shape[axis:]...)
	return out
}

// BMM returns the batched matrix product [B,m,k] x [B,k,n] -> [B,m,n].
func BMM(a, b *Variable) *Variable {
	out := tensor.BMM(a.Value, b.Value)
	return newOp("bmm", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		// grad_a[i] = grad[i] @ b[i]^T ; grad_b[i] = a[i]^T @ grad[i]
		bt := b.Value.Transpose(1, 2).Contiguous()
		at := a.Value.Transpose(1, 2).Contiguous()
		return []*tensor.Tensor{
			tensor.BMM(grad, bt),
			tensor.BMM(at, grad),
		}
	})
}

// Dropout zeroes elements with probability p (inverted dropout: survivors
// are scaled by 1/(1-p)), using the supplied deterministic generator.
// With p <= 0 it is the identity.
func Dropout(a *Variable, p float64, rng *tensor.RNG) *Variable {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic(fmt.Sprintf("autograd: Dropout probability %v must be < 1", p))
	}
	mask := tensor.New(a.Value.Shape()...)
	md := mask.Data()
	scale := 1 / (1 - p)
	for i := range md {
		if rng.Float64() >= p {
			md[i] = scale
		}
	}
	out := tensor.Mul(a.Value, mask)
	return newOp("dropout", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Mul(grad, mask)}
	})
}

// Clamp restricts values to [lo, hi]; gradients pass only through elements
// strictly inside the interval (the straight-through boundary convention).
func Clamp(a *Variable, lo, hi float64) *Variable {
	out := a.Value.Clamp(lo, hi)
	return newOp("clamp", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		mask := a.Value.Apply(func(v float64) float64 {
			if v > lo && v < hi {
				return 1
			}
			return 0
		})
		return []*tensor.Tensor{tensor.Mul(grad, mask)}
	})
}

// HuberLoss is the smooth-L1 loss with threshold delta against a constant
// target — the robust alternative some DCRNN variants train with.
func HuberLoss(pred *Variable, target *tensor.Tensor, delta float64) *Variable {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autograd: HuberLoss shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	if delta <= 0 {
		delta = 1
	}
	diff := tensor.Sub(pred.Value, target)
	n := float64(pred.Value.NumElements())
	var sum float64
	dd := diff.Contiguous().Data()
	for _, v := range dd {
		av := math.Abs(v)
		if av <= delta {
			sum += 0.5 * v * v
		} else {
			sum += delta * (av - 0.5*delta)
		}
	}
	out := tensor.Scalar(sum / n)
	return newOp("huber", out, []*Variable{pred}, func(grad *tensor.Tensor) []*tensor.Tensor {
		scale := grad.Item() / n
		g := diff.Apply(func(v float64) float64 {
			if math.Abs(v) <= delta {
				return scale * v
			}
			if v > 0 {
				return scale * delta
			}
			return -scale * delta
		})
		return []*tensor.Tensor{g}
	})
}
