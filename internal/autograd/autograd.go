// Package autograd implements reverse-mode automatic differentiation over
// internal/tensor. Each differentiable operation records its inputs and a
// backward closure; Backward walks the resulting DAG in reverse topological
// order, accumulating gradients. The engine is deliberately minimal — just
// the ops the paper's models (DCRNN, PGT-DCRNN, A3T-GCN, ST-LLM-lite) need —
// but gradient-checked against central finite differences for every op.
package autograd

import (
	"fmt"
	"time"

	"pgti/internal/tensor"
)

// Variable wraps a tensor value in the autograd graph.
type Variable struct {
	Value        *tensor.Tensor
	Grad         *tensor.Tensor // nil until Backward reaches this variable
	requiresGrad bool
	op           *opRecord
}

// opRecord captures how a variable was produced.
type opRecord struct {
	name     string
	inputs   []*Variable
	backward func(grad *tensor.Tensor) []*tensor.Tensor
}

// NewVariable returns a leaf variable that participates in gradients.
func NewVariable(t *tensor.Tensor) *Variable {
	return &Variable{Value: t, requiresGrad: true}
}

// Constant returns a leaf variable excluded from gradient computation.
func Constant(t *tensor.Tensor) *Variable {
	return &Variable{Value: t}
}

// RequiresGrad reports whether gradients flow to this variable.
func (v *Variable) RequiresGrad() bool { return v.requiresGrad }

// IsLeaf reports whether the variable was created directly (not by an op).
func (v *Variable) IsLeaf() bool { return v.op == nil }

// Shape returns the shape of the underlying value.
func (v *Variable) Shape() []int { return v.Value.Shape() }

// ZeroGrad clears the accumulated gradient.
func (v *Variable) ZeroGrad() { v.Grad = nil }

// Detach returns a constant view of the variable's value, cutting the graph.
// RNN training uses this to truncate backpropagation between batches.
func (v *Variable) Detach() *Variable { return Constant(v.Value) }

// anyRequiresGrad reports whether gradient tracking is needed for an op.
func anyRequiresGrad(inputs []*Variable) bool {
	for _, in := range inputs {
		if in.requiresGrad {
			return true
		}
	}
	return false
}

// newOp builds the result variable for an op, recording the tape entry only
// when some input needs gradients.
func newOp(name string, value *tensor.Tensor, inputs []*Variable, backward func(grad *tensor.Tensor) []*tensor.Tensor) *Variable {
	out := &Variable{Value: value}
	if anyRequiresGrad(inputs) {
		out.requiresGrad = true
		out.op = &opRecord{name: name, inputs: inputs, backward: backward}
	}
	return out
}

// GradHook observes leaf gradients becoming final during a backward pass:
// it is invoked exactly once per reachable gradient-requiring leaf, at the
// moment no remaining op can still contribute to that leaf's gradient.
// Distributed training uses this to launch per-bucket gradient AllReduce
// while the rest of the backward pass is still running.
type GradHook func(leaf *Variable)

// Backward computes gradients of v with respect to every reachable variable
// with RequiresGrad. v must be a scalar (one element); its seed gradient is 1.
func Backward(v *Variable) error {
	if v.Value.NumElements() != 1 {
		return fmt.Errorf("autograd: Backward requires a scalar output, got shape %v", v.Value.Shape())
	}
	return BackwardWithGrad(v, tensor.Ones(v.Value.Shape()...))
}

// BackwardWithGrad runs backpropagation from v with an explicit seed
// gradient of the same shape as v's value.
func BackwardWithGrad(v *Variable, seed *tensor.Tensor) error {
	return BackwardWithHook(v, seed, nil)
}

// BackwardHooked is Backward (scalar output, unit seed) with a
// gradient-ready hook.
func BackwardHooked(v *Variable, hook GradHook) error {
	if v.Value.NumElements() != 1 {
		return fmt.Errorf("autograd: Backward requires a scalar output, got shape %v", v.Value.Shape())
	}
	return BackwardWithHook(v, tensor.Ones(v.Value.Shape()...), hook)
}

// TimedGradHook observes a leaf gradient becoming final during a backward
// pass together with the wall-clock time elapsed since the pass began. The
// per-parameter timings let distributed training place each gradient
// bucket's AllReduce launch on the measured backward timeline instead of a
// modeled split.
type TimedGradHook func(leaf *Variable, elapsed time.Duration)

// BackwardTimed is Backward (scalar output, unit seed) with a timed
// gradient-ready hook; it returns the total wall-clock duration of the
// backward pass. Elapsed values are non-decreasing in hook-firing order and
// never exceed the returned total.
func BackwardTimed(v *Variable, hook TimedGradHook) (time.Duration, error) {
	if v.Value.NumElements() != 1 {
		return 0, fmt.Errorf("autograd: Backward requires a scalar output, got shape %v", v.Value.Shape())
	}
	start := time.Now()
	var wrapped GradHook
	if hook != nil {
		wrapped = func(leaf *Variable) { hook(leaf, time.Since(start)) }
	}
	err := BackwardWithHook(v, tensor.Ones(v.Value.Shape()...), wrapped)
	return time.Since(start), err
}

// BackwardWithHook is BackwardWithGrad with a gradient-ready hook: as the
// reverse sweep retires the last consumer of each gradient-requiring leaf,
// hook fires with that leaf (its Grad is final, though possibly nil when no
// gradient flowed to it). A nil hook degenerates to BackwardWithGrad.
func BackwardWithHook(v *Variable, seed *tensor.Tensor, hook GradHook) error {
	if !v.Value.SameShape(seed) {
		return fmt.Errorf("autograd: seed gradient shape %v does not match output shape %v", seed.Shape(), v.Value.Shape())
	}
	if !v.requiresGrad {
		return nil
	}
	order, err := topoSort(v)
	if err != nil {
		return err
	}
	// pending[leaf] counts the reachable ops still holding leaf as an input;
	// when it hits zero the leaf's gradient can no longer change.
	var pending map[*Variable]int
	if hook != nil {
		pending = make(map[*Variable]int)
		for _, node := range order {
			if node.op == nil {
				continue
			}
			for _, in := range node.op.inputs {
				if in.requiresGrad && in.op == nil {
					pending[in]++
				}
			}
		}
		if v.op == nil {
			// Degenerate graph: the root itself is the only leaf.
			defer hook(v)
		}
	}
	accumulate(v, seed)
	// Reverse topological order: from output back to leaves.
	for i := len(order) - 1; i >= 0; i-- {
		node := order[i]
		if node.op == nil {
			continue
		}
		if node.Grad != nil {
			grads := node.op.backward(node.Grad)
			if len(grads) != len(node.op.inputs) {
				return fmt.Errorf("autograd: op %q returned %d gradients for %d inputs", node.op.name, len(grads), len(node.op.inputs))
			}
			for j, in := range node.op.inputs {
				if !in.requiresGrad || grads[j] == nil {
					continue
				}
				if !in.Value.SameShape(grads[j]) {
					return fmt.Errorf("autograd: op %q produced gradient shape %v for input shape %v", node.op.name, grads[j].Shape(), in.Value.Shape())
				}
				accumulate(in, grads[j])
			}
		}
		// Retire this op's claims on its leaves even when no gradient flowed
		// through it — readiness is structural, not value-dependent.
		if hook != nil {
			for _, in := range node.op.inputs {
				if !in.requiresGrad || in.op != nil {
					continue
				}
				pending[in]--
				if pending[in] == 0 {
					hook(in)
				}
			}
		}
		// Free the intermediate gradient: only leaves keep gradients after
		// a full backward pass, matching PyTorch semantics.
		if node != v {
			node.Grad = nil
		}
	}
	return nil
}

func accumulate(v *Variable, g *tensor.Tensor) {
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	v.Grad.AddInPlace(g)
}

// topoSort returns the variables reachable from root in topological order
// (inputs before outputs).
func topoSort(root *Variable) ([]*Variable, error) {
	var order []*Variable
	state := map[*Variable]int{} // 0 unseen, 1 visiting, 2 done
	// Iterative DFS to avoid stack overflows on long RNN chains.
	type frame struct {
		v    *Variable
		next int
	}
	stack := []frame{{v: root}}
	state[root] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.v.op == nil || f.next >= len(f.v.op.inputs) {
			state[f.v] = 2
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
			continue
		}
		child := f.v.op.inputs[f.next]
		f.next++
		switch state[child] {
		case 0:
			if child.requiresGrad {
				state[child] = 1
				stack = append(stack, frame{v: child})
			}
		case 1:
			// A cycle is impossible for tapes built by this package, but a
			// hand-constructed graph could contain one.
			return nil, fmt.Errorf("autograd: cycle detected through op %q", f.v.op.name)
		}
	}
	return order, nil
}

// reduceGradTo sums grad over broadcast dimensions so that it matches shape.
// This is the adjoint of broadcasting.
func reduceGradTo(grad *tensor.Tensor, shape []int) *tensor.Tensor {
	g := grad
	// Remove leading broadcast dimensions.
	for g.Rank() > len(shape) {
		g = g.Sum(0)
	}
	// Sum over dimensions where the target size is 1.
	for axis := 0; axis < len(shape); axis++ {
		if shape[axis] == 1 && g.Dim(axis) != 1 {
			g = g.Sum(axis).Unsqueeze(axis)
		}
	}
	return g.Contiguous()
}
