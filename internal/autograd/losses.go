package autograd

import (
	"fmt"

	"pgti/internal/tensor"
)

// MAELoss returns the mean absolute error between pred and a constant
// target, as a scalar variable. MAE is the metric DCRNN and the PGT-I
// evaluation optimize and report.
func MAELoss(pred *Variable, target *tensor.Tensor) *Variable {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autograd: MAELoss shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	diff := tensor.Sub(pred.Value, target)
	out := tensor.Scalar(diff.Abs().MeanAll())
	n := float64(pred.Value.NumElements())
	return newOp("mae", out, []*Variable{pred}, func(grad *tensor.Tensor) []*tensor.Tensor {
		scale := grad.Item() / n
		g := diff.Apply(func(v float64) float64 {
			switch {
			case v > 0:
				return scale
			case v < 0:
				return -scale
			default:
				return 0
			}
		})
		return []*tensor.Tensor{g}
	})
}

// MaskedMAELoss returns the MAE over entries where target != maskValue —
// the missing-data convention of the traffic benchmarks, where sensor
// dropouts are encoded as zeros and must not contribute gradient. Returns
// a zero-valued scalar (no gradient) when every entry is masked.
func MaskedMAELoss(pred *Variable, target *tensor.Tensor, maskValue float64) *Variable {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autograd: MaskedMAELoss shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	diff := tensor.Sub(pred.Value, target)
	td := target.Contiguous().Data()
	dd := diff.Contiguous()
	var sum float64
	var count int
	for i, tv := range td {
		if tv != maskValue {
			v := dd.Data()[i]
			if v < 0 {
				v = -v
			}
			sum += v
			count++
		}
	}
	if count == 0 {
		return Constant(tensor.Scalar(0))
	}
	out := tensor.Scalar(sum / float64(count))
	n := float64(count)
	return newOp("maskedMAE", out, []*Variable{pred}, func(grad *tensor.Tensor) []*tensor.Tensor {
		scale := grad.Item() / n
		g := tensor.New(pred.Value.Shape()...)
		gd := g.Data()
		ddv := dd.Data()
		for i, tv := range td {
			if tv == maskValue {
				continue
			}
			switch {
			case ddv[i] > 0:
				gd[i] = scale
			case ddv[i] < 0:
				gd[i] = -scale
			}
		}
		return []*tensor.Tensor{g}
	})
}

// MSELoss returns the mean squared error between pred and a constant target.
func MSELoss(pred *Variable, target *tensor.Tensor) *Variable {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autograd: MSELoss shape mismatch %v vs %v", pred.Value.Shape(), target.Shape()))
	}
	diff := tensor.Sub(pred.Value, target)
	out := tensor.Scalar(tensor.Mul(diff, diff).MeanAll())
	n := float64(pred.Value.NumElements())
	return newOp("mse", out, []*Variable{pred}, func(grad *tensor.Tensor) []*tensor.Tensor {
		scale := 2 * grad.Item() / n
		return []*tensor.Tensor{diff.MulScalar(scale)}
	})
}
