package autograd

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// gradCheck verifies autograd gradients of f (a scalar function of the leaf
// inputs) against central finite differences.
func gradCheck(t *testing.T, name string, inputs []*Variable, f func(ins []*Variable) *Variable, tol float64) {
	t.Helper()
	out := f(inputs)
	if err := Backward(out); err != nil {
		t.Fatalf("%s: backward: %v", name, err)
	}
	const h = 1e-6
	for vi, v := range inputs {
		if !v.RequiresGrad() {
			continue
		}
		if v.Grad == nil {
			t.Fatalf("%s: input %d missing gradient", name, vi)
		}
		data := v.Value.Data()
		grad := v.Grad.Contiguous().Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			plus := f(cloneLeaves(inputs)).Value.Item()
			data[i] = orig - h
			minus := f(cloneLeaves(inputs)).Value.Item()
			data[i] = orig
			numeric := (plus - minus) / (2 * h)
			if math.Abs(numeric-grad[i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("%s: input %d elem %d: autograd %.8g vs numeric %.8g", name, vi, i, grad[i], numeric)
			}
		}
	}
}

// cloneLeaves produces fresh leaf variables sharing the same storage, so the
// finite-difference probes rebuild the graph without stale tape state.
func cloneLeaves(inputs []*Variable) []*Variable {
	out := make([]*Variable, len(inputs))
	for i, v := range inputs {
		if v.RequiresGrad() {
			out[i] = NewVariable(v.Value)
		} else {
			out[i] = Constant(v.Value)
		}
	}
	return out
}

func leaf(rng *tensor.RNG, shape ...int) *Variable {
	return NewVariable(tensor.Randn(rng, shape...))
}

func TestGradAdd(t *testing.T) {
	rng := tensor.NewRNG(1)
	gradCheck(t, "add", []*Variable{leaf(rng, 3, 4), leaf(rng, 3, 4)}, func(ins []*Variable) *Variable {
		return MeanAll(Add(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradAddBroadcast(t *testing.T) {
	rng := tensor.NewRNG(2)
	gradCheck(t, "addBroadcast", []*Variable{leaf(rng, 3, 4), leaf(rng, 4)}, func(ins []*Variable) *Variable {
		return MeanAll(Add(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradSub(t *testing.T) {
	rng := tensor.NewRNG(3)
	gradCheck(t, "sub", []*Variable{leaf(rng, 2, 3), leaf(rng, 1, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Sub(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradMul(t *testing.T) {
	rng := tensor.NewRNG(4)
	gradCheck(t, "mul", []*Variable{leaf(rng, 3, 2), leaf(rng, 3, 2)}, func(ins []*Variable) *Variable {
		return SumAll(Mul(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradMulBroadcast(t *testing.T) {
	rng := tensor.NewRNG(5)
	gradCheck(t, "mulBroadcast", []*Variable{leaf(rng, 4, 3), leaf(rng, 3)}, func(ins []*Variable) *Variable {
		return SumAll(Mul(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradMatMul(t *testing.T) {
	rng := tensor.NewRNG(6)
	gradCheck(t, "matmul", []*Variable{leaf(rng, 3, 4), leaf(rng, 4, 2)}, func(ins []*Variable) *Variable {
		return MeanAll(MatMul(ins[0], ins[1]))
	}, 1e-5)
}

func TestGradSpMM(t *testing.T) {
	rng := tensor.NewRNG(7)
	m, err := sparse.FromCOO(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 0.5}, {Row: 1, Col: 0, Val: -1.2},
		{Row: 2, Col: 3, Val: 2.0}, {Row: 3, Col: 3, Val: 0.7}, {Row: 0, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "spmm", []*Variable{leaf(rng, 4, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(SpMM(m, ins[0]))
	}, 1e-5)
}

func TestGradActivations(t *testing.T) {
	rng := tensor.NewRNG(8)
	gradCheck(t, "sigmoid", []*Variable{leaf(rng, 3, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Sigmoid(ins[0]))
	}, 1e-5)
	gradCheck(t, "tanh", []*Variable{leaf(rng, 3, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Tanh(ins[0]))
	}, 1e-5)
	// Shift ReLU input away from the kink at zero.
	v := NewVariable(tensor.Randn(tensor.NewRNG(9), 3, 3).AddScalar(0.5))
	gradCheck(t, "relu", []*Variable{v}, func(ins []*Variable) *Variable {
		return MeanAll(Relu(ins[0]))
	}, 1e-4)
}

func TestGradConcatStackSlice(t *testing.T) {
	rng := tensor.NewRNG(10)
	gradCheck(t, "concat", []*Variable{leaf(rng, 2, 3), leaf(rng, 2, 2)}, func(ins []*Variable) *Variable {
		return MeanAll(Concat(1, ins[0], ins[1]))
	}, 1e-5)
	gradCheck(t, "stack", []*Variable{leaf(rng, 2, 3), leaf(rng, 2, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Stack(0, ins[0], ins[1]))
	}, 1e-5)
	gradCheck(t, "slice", []*Variable{leaf(rng, 5, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(Slice(ins[0], 0, 1, 4))
	}, 1e-5)
}

func TestGradReshapeTranspose(t *testing.T) {
	rng := tensor.NewRNG(11)
	gradCheck(t, "reshape", []*Variable{leaf(rng, 2, 6)}, func(ins []*Variable) *Variable {
		return MeanAll(Reshape(ins[0], 3, 4))
	}, 1e-5)
	gradCheck(t, "transpose", []*Variable{leaf(rng, 2, 5)}, func(ins []*Variable) *Variable {
		return MeanAll(Mul(Transpose(ins[0], 0, 1), Constant(tensor.Randn(tensor.NewRNG(99), 5, 2))))
	}, 1e-5)
}

func TestGradSoftmax(t *testing.T) {
	rng := tensor.NewRNG(12)
	w := Constant(tensor.Randn(tensor.NewRNG(13), 3, 4))
	gradCheck(t, "softmax", []*Variable{leaf(rng, 3, 4)}, func(ins []*Variable) *Variable {
		return SumAll(Mul(Softmax(ins[0]), w))
	}, 1e-4)
}

func TestGradGatherRows(t *testing.T) {
	rng := tensor.NewRNG(14)
	gradCheck(t, "gatherRows", []*Variable{leaf(rng, 5, 3)}, func(ins []*Variable) *Variable {
		return MeanAll(GatherRows(ins[0], []int{0, 2, 2, 4}))
	}, 1e-5)
}

func TestGradLayerNorm(t *testing.T) {
	rng := tensor.NewRNG(15)
	x := leaf(rng, 4, 6)
	gamma := NewVariable(tensor.Ones(6))
	beta := NewVariable(tensor.New(6))
	w := Constant(tensor.Randn(tensor.NewRNG(16), 4, 6))
	gradCheck(t, "layerNorm", []*Variable{x, gamma, beta}, func(ins []*Variable) *Variable {
		return SumAll(Mul(LayerNorm(ins[0], ins[1], ins[2], 1e-5), w))
	}, 1e-4)
}

func TestGradLosses(t *testing.T) {
	rng := tensor.NewRNG(17)
	target := tensor.Randn(tensor.NewRNG(18), 4, 3)
	gradCheck(t, "mse", []*Variable{leaf(rng, 4, 3)}, func(ins []*Variable) *Variable {
		return MSELoss(ins[0], target)
	}, 1e-4)
	gradCheck(t, "mae", []*Variable{leaf(rng, 4, 3)}, func(ins []*Variable) *Variable {
		return MAELoss(ins[0], target)
	}, 1e-4)
}

func TestGradChainedExpression(t *testing.T) {
	// A small DCGRU-like expression: sigmoid(W1 x + W2 h) gating tanh(...).
	rng := tensor.NewRNG(19)
	x := leaf(rng, 4, 3)
	h := leaf(rng, 4, 5)
	w1 := leaf(rng, 3, 5)
	w2 := leaf(rng, 5, 5)
	gradCheck(t, "chained", []*Variable{x, h, w1, w2}, func(ins []*Variable) *Variable {
		u := Sigmoid(Add(MatMul(ins[0], ins[2]), MatMul(ins[1], ins[3])))
		c := Tanh(MatMul(ins[0], ins[2]))
		out := Add(Mul(u, ins[1]), Mul(AddScalar(Neg(u), 1), c))
		return MeanAll(out)
	}, 1e-4)
}

func TestGradAccumulatesOnReuse(t *testing.T) {
	// y = x + x must give gradient 2.
	x := NewVariable(tensor.FromSlice([]float64{1, 2}, 2))
	y := SumAll(Add(x, x))
	if err := Backward(y); err != nil {
		t.Fatal(err)
	}
	if x.Grad.At(0) != 2 || x.Grad.At(1) != 2 {
		t.Fatalf("reused-variable grad wrong: %v", x.Grad)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	x := NewVariable(tensor.New(2, 2))
	if err := Backward(Add(x, x)); err == nil {
		t.Fatal("expected error for non-scalar Backward")
	}
}

func TestConstantsGetNoGrad(t *testing.T) {
	x := NewVariable(tensor.Ones(2))
	c := Constant(tensor.Ones(2))
	y := SumAll(Mul(x, c))
	if err := Backward(y); err != nil {
		t.Fatal(err)
	}
	if c.Grad != nil {
		t.Fatal("constant must not receive gradient")
	}
	if x.Grad == nil {
		t.Fatal("leaf must receive gradient")
	}
}

func TestDetachCutsGraph(t *testing.T) {
	x := NewVariable(tensor.Ones(2))
	h := Mul(x, x)
	d := h.Detach()
	y := SumAll(Mul(d, d))
	if err := Backward(y); err != nil {
		t.Fatal(err)
	}
	if x.Grad != nil {
		t.Fatal("detach must stop gradient flow")
	}
}

func TestZeroGradAndRepeatedBackward(t *testing.T) {
	x := NewVariable(tensor.Ones(3))
	run := func() float64 {
		y := SumAll(Mul(x, x))
		if err := Backward(y); err != nil {
			t.Fatal(err)
		}
		return x.Grad.At(0)
	}
	if g := run(); g != 2 {
		t.Fatalf("first backward grad %v", g)
	}
	// Without ZeroGrad, gradients accumulate (PyTorch semantics).
	if g := run(); g != 4 {
		t.Fatalf("accumulated grad %v want 4", g)
	}
	x.ZeroGrad()
	if g := run(); g != 2 {
		t.Fatalf("after ZeroGrad grad %v want 2", g)
	}
}

func TestBackwardWithGradSeed(t *testing.T) {
	x := NewVariable(tensor.Ones(2, 2))
	y := ScalarMul(x, 3)
	seed := tensor.Full(2, 2, 2)
	if err := BackwardWithGrad(y, seed); err != nil {
		t.Fatal(err)
	}
	if x.Grad.At(1, 1) != 6 {
		t.Fatalf("seeded backward grad %v", x.Grad)
	}
	if err := BackwardWithGrad(y, tensor.Ones(3)); err == nil {
		t.Fatal("expected seed-shape error")
	}
}

func TestLongChainBackwardNoStackOverflow(t *testing.T) {
	// Simulates an RNN unrolled over many steps.
	x := NewVariable(tensor.Ones(4))
	v := ScalarMul(x, 1.0)
	for i := 0; i < 3000; i++ {
		v = AddScalar(ScalarMul(v, 0.999), 0.001)
	}
	if err := Backward(MeanAll(v)); err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.999, 3000) / 4
	if math.Abs(x.Grad.At(0)-want) > 1e-9 {
		t.Fatalf("long-chain grad %v want %v", x.Grad.At(0), want)
	}
}

// Property: gradient of sum(a*b) wrt a equals b exactly, for random shapes.
func TestPropertyMulGradIdentity(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		m := int(mRaw%5) + 1
		n := int(nRaw%5) + 1
		rng := tensor.NewRNG(seed)
		a := NewVariable(tensor.Randn(rng, m, n))
		b := tensor.Randn(rng, m, n)
		y := SumAll(Mul(a, Constant(b)))
		if err := Backward(y); err != nil {
			return false
		}
		return a.Grad.AllClose(b, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBackwardHookFiresOncePerLeafWithFinalGrad verifies the gradient-ready
// hook: one firing per reachable gradient-requiring leaf, at a point where
// the leaf's gradient already equals its final value.
func TestBackwardHookFiresOncePerLeafWithFinalGrad(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := leaf(rng, 3, 3)
	b := leaf(rng, 3, 3)
	c := leaf(rng, 3, 3)
	// a appears twice (two consumers); c feeds two separate ops.
	out := MeanAll(Add(Mul(a, b), Add(Mul(a, c), Sigmoid(c))))

	fired := map[*Variable]int{}
	snapshot := map[*Variable]*tensor.Tensor{}
	err := BackwardHooked(out, func(v *Variable) {
		fired[v]++
		if v.Grad != nil {
			snapshot[v] = v.Grad.Clone()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*Variable{"a": a, "b": b, "c": c} {
		if fired[v] != 1 {
			t.Fatalf("leaf %s: hook fired %d times, want 1", name, fired[v])
		}
		if v.Grad == nil || snapshot[v] == nil {
			t.Fatalf("leaf %s: gradient missing at hook time", name)
		}
		if !snapshot[v].Equal(v.Grad) {
			t.Fatalf("leaf %s: hook observed a non-final gradient", name)
		}
	}
}

// TestBackwardHookOrderMatchesBackwardSweep verifies the last-used leaf
// (closest to the output) becomes ready before a leaf consumed only at the
// start of the chain — the property DDP bucket overlap relies on.
func TestBackwardHookOrderMatchesBackwardSweep(t *testing.T) {
	rng := tensor.NewRNG(2)
	early := leaf(rng, 4, 4) // consumed first (deepest in the chain)
	late := leaf(rng, 4, 4)  // consumed last (adjacent to the output)
	out := MeanAll(MatMul(Tanh(MatMul(early, early)), late))

	var order []*Variable
	if err := BackwardHooked(out, func(v *Variable) { order = append(order, v) }); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != late || order[1] != early {
		t.Fatalf("hook order wrong: got %d leaves, late-first=%v", len(order), len(order) > 0 && order[0] == late)
	}
}

// TestBackwardHookNilAndConstantLeaves verifies a nil hook reproduces plain
// Backward and constants never fire.
func TestBackwardHookNilAndConstantLeaves(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := leaf(rng, 2, 2)
	k := Constant(tensor.Ones(2, 2))
	out := MeanAll(Mul(a, k))
	if err := BackwardWithHook(out, tensor.Ones(), nil); err != nil {
		t.Fatal(err)
	}
	want := a.Grad.Clone()
	a.ZeroGrad()

	fired := 0
	out2 := MeanAll(Mul(a, k))
	if err := BackwardHooked(out2, func(v *Variable) {
		fired++
		if v != a {
			t.Fatal("hook fired for a non-gradient leaf")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times", fired)
	}
	if !a.Grad.Equal(want) {
		t.Fatal("hooked backward changed the gradients")
	}
}

// TestBackwardTimedReportsMonotonicElapsed verifies the timing contract of
// the timed gradient-ready hook: one firing per leaf, elapsed values
// non-decreasing in firing order, bounded by the returned backward total,
// and gradients identical to plain Backward.
func TestBackwardTimedReportsMonotonicElapsed(t *testing.T) {
	rng := tensor.NewRNG(4)
	early := leaf(rng, 8, 8)
	late := leaf(rng, 8, 8)
	build := func() *Variable { return MeanAll(MatMul(Tanh(MatMul(early, early)), late)) }

	if err := Backward(build()); err != nil {
		t.Fatal(err)
	}
	wantEarly, wantLate := early.Grad.Clone(), late.Grad.Clone()
	early.ZeroGrad()
	late.ZeroGrad()

	var elapsed []time.Duration
	total, err := BackwardTimed(build(), func(v *Variable, d time.Duration) {
		elapsed = append(elapsed, d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(elapsed) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(elapsed))
	}
	for i, d := range elapsed {
		if d < 0 || d > total {
			t.Fatalf("elapsed[%d] = %v outside [0, total=%v]", i, d, total)
		}
		if i > 0 && d < elapsed[i-1] {
			t.Fatalf("elapsed not monotonic: %v after %v", d, elapsed[i-1])
		}
	}
	if !early.Grad.AllClose(wantEarly, 1e-12) || !late.Grad.AllClose(wantLate, 1e-12) {
		t.Fatal("timed backward changed the gradients")
	}

	// Non-scalar roots are rejected, like Backward.
	if _, err := BackwardTimed(Add(early, late), nil); err == nil {
		t.Fatal("expected scalar-output error")
	}
}
