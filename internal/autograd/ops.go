package autograd

import (
	"fmt"
	"math"
	"sync"

	"pgti/internal/parallel"
	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// rowKernelThreshold is the minimum per-chunk work (row length in elements,
// weighted by the transcendental cost) a parallel row-wise kernel (softmax,
// layer norm) carries; smaller workloads collapse to one serial chunk.
const rowKernelThreshold = 4 * 1024

// Add returns a + b with broadcasting.
func Add(a, b *Variable) *Variable {
	out := tensor.Add(a.Value, b.Value)
	return newOp("add", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{
			reduceGradTo(grad, a.Value.Shape()),
			reduceGradTo(grad, b.Value.Shape()),
		}
	})
}

// Sub returns a - b with broadcasting.
func Sub(a, b *Variable) *Variable {
	out := tensor.Sub(a.Value, b.Value)
	return newOp("sub", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{
			reduceGradTo(grad, a.Value.Shape()),
			reduceGradTo(grad.Neg(), b.Value.Shape()),
		}
	})
}

// Mul returns the element-wise product with broadcasting.
func Mul(a, b *Variable) *Variable {
	out := tensor.Mul(a.Value, b.Value)
	return newOp("mul", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{
			reduceGradTo(tensor.Mul(grad, b.Value), a.Value.Shape()),
			reduceGradTo(tensor.Mul(grad, a.Value), b.Value.Shape()),
		}
	})
}

// Neg returns -a.
func Neg(a *Variable) *Variable {
	return newOp("neg", a.Value.Neg(), []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{grad.Neg()}
	})
}

// ScalarMul returns a * s for a constant scalar s.
func ScalarMul(a *Variable, s float64) *Variable {
	return newOp("scalarMul", a.Value.MulScalar(s), []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{grad.MulScalar(s)}
	})
}

// AddScalar returns a + s for a constant scalar s.
func AddScalar(a *Variable, s float64) *Variable {
	return newOp("addScalar", a.Value.AddScalar(s), []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{grad.Clone()}
	})
}

// MatMul returns the matrix product a @ b for rank-2 variables.
func MatMul(a, b *Variable) *Variable {
	out := tensor.MatMul(a.Value, b.Value)
	return newOp("matmul", out, []*Variable{a, b}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{
			tensor.MatMul(grad, b.Value.T()),
			tensor.MatMul(a.Value.T(), grad),
		}
	})
}

// transposeCache memoizes CSR transposes keyed by matrix identity, so the
// backward pass of SpMM does not rebuild A^T on every batch.
var transposeCache sync.Map // map[*sparse.CSR]*sparse.CSR

func cachedTranspose(m *sparse.CSR) *sparse.CSR {
	if t, ok := transposeCache.Load(m); ok {
		return t.(*sparse.CSR)
	}
	t := m.Transpose()
	transposeCache.Store(m, t)
	return t
}

// SpMM returns the sparse-dense product m @ x, where the sparse operand is a
// constant (graph structure carries no gradient). Backward: grad_x = m^T @ g.
func SpMM(m *sparse.CSR, x *Variable) *Variable {
	out := m.SpMM(x.Value)
	return newOp("spmm", out, []*Variable{x}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{cachedTranspose(m).SpMM(grad)}
	})
}

// Sigmoid returns the element-wise logistic function.
func Sigmoid(a *Variable) *Variable {
	s := a.Value.Sigmoid()
	return newOp("sigmoid", s, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		ds := s.Apply(func(v float64) float64 { return v * (1 - v) })
		return []*tensor.Tensor{tensor.Mul(grad, ds)}
	})
}

// Tanh returns the element-wise hyperbolic tangent.
func Tanh(a *Variable) *Variable {
	t := a.Value.Tanh()
	return newOp("tanh", t, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		dt := t.Apply(func(v float64) float64 { return 1 - v*v })
		return []*tensor.Tensor{tensor.Mul(grad, dt)}
	})
}

// Relu returns max(a, 0) element-wise.
func Relu(a *Variable) *Variable {
	out := a.Value.Relu()
	return newOp("relu", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		mask := a.Value.Apply(func(v float64) float64 {
			if v > 0 {
				return 1
			}
			return 0
		})
		return []*tensor.Tensor{tensor.Mul(grad, mask)}
	})
}

// Concat concatenates variables along axis.
func Concat(axis int, vars ...*Variable) *Variable {
	vals := make([]*tensor.Tensor, len(vars))
	for i, v := range vars {
		vals[i] = v.Value
	}
	out := tensor.Concat(axis, vals...)
	return newOp("concat", out, vars, func(grad *tensor.Tensor) []*tensor.Tensor {
		grads := make([]*tensor.Tensor, len(vars))
		pos := 0
		for i, v := range vars {
			n := v.Value.Dim(axis)
			grads[i] = grad.Slice(axis, pos, pos+n).Contiguous()
			pos += n
		}
		return grads
	})
}

// Stack stacks same-shaped variables along a new axis.
func Stack(axis int, vars ...*Variable) *Variable {
	vals := make([]*tensor.Tensor, len(vars))
	for i, v := range vars {
		vals[i] = v.Value
	}
	out := tensor.Stack(axis, vals...)
	return newOp("stack", out, vars, func(grad *tensor.Tensor) []*tensor.Tensor {
		grads := make([]*tensor.Tensor, len(vars))
		for i := range vars {
			grads[i] = grad.Index(axis, i).Contiguous()
		}
		return grads
	})
}

// Slice returns a view-like slice of a along axis; backward scatters the
// gradient into a zero tensor of a's shape.
func Slice(a *Variable, axis, start, end int) *Variable {
	out := a.Value.Slice(axis, start, end)
	return newOp("slice", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		full := tensor.New(a.Value.Shape()...)
		full.Slice(axis, start, end).CopyFrom(grad)
		return []*tensor.Tensor{full}
	})
}

// Reshape returns a reshaped variable.
func Reshape(a *Variable, shape ...int) *Variable {
	orig := a.Value.Shape()
	out := a.Value.Reshape(shape...)
	return newOp("reshape", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{grad.Reshape(orig...)}
	})
}

// Transpose exchanges two axes.
func Transpose(a *Variable, x, y int) *Variable {
	out := a.Value.Transpose(x, y)
	return newOp("transpose", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{grad.Transpose(x, y).Contiguous()}
	})
}

// SumAll reduces a to a scalar by summation.
func SumAll(a *Variable) *Variable {
	out := tensor.Scalar(a.Value.SumAll())
	return newOp("sumAll", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Full(grad.Item(), a.Value.Shape()...)}
	})
}

// MeanAll reduces a to a scalar by arithmetic mean.
func MeanAll(a *Variable) *Variable {
	n := a.Value.NumElements()
	out := tensor.Scalar(a.Value.MeanAll())
	return newOp("meanAll", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Full(grad.Item()/float64(n), a.Value.Shape()...)}
	})
}

// Softmax applies softmax along the last axis.
func Softmax(a *Variable) *Variable {
	out := softmaxLastAxis(a.Value)
	return newOp("softmax", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		// dL/dx = s * (g - sum(g*s, last axis, keepdims))
		gs := tensor.Mul(grad, out)
		last := out.Rank() - 1
		sum := gs.Sum(last).Unsqueeze(last)
		return []*tensor.Tensor{tensor.Mul(out, tensor.Sub(grad, sum))}
	})
}

func softmaxLastAxis(t *tensor.Tensor) *tensor.Tensor {
	last := t.Rank() - 1
	if last < 0 {
		panic("autograd: Softmax requires rank >= 1")
	}
	tc := t.Contiguous()
	out := tensor.New(t.Shape()...)
	cols := t.Dim(last)
	rows := t.NumElements() / cols
	src := tc.Data()
	dst := out.Data()
	// Rows are independent; fan the row loop over the worker pool (exp
	// dominates, so each element counts as several work units).
	parallel.For(rows, parallel.GrainFor(4*cols, rowKernelThreshold), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := src[r*cols : (r+1)*cols]
			orow := dst[r*cols : (r+1)*cols]
			maxV := math.Inf(-1)
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for i, v := range row {
				e := math.Exp(v - maxV)
				orow[i] = e
				sum += e
			}
			for i := range orow {
				orow[i] /= sum
			}
		}
	})
	return out
}

// GatherRows selects rows of a (axis 0) by index — the embedding-lookup
// primitive. Backward scatter-adds the gradient into the selected rows.
func GatherRows(a *Variable, indices []int) *Variable {
	out := a.Value.GatherRows(indices)
	return newOp("gatherRows", out, []*Variable{a}, func(grad *tensor.Tensor) []*tensor.Tensor {
		full := tensor.New(a.Value.Shape()...)
		for i, idx := range indices {
			full.Index(0, idx).AddInPlace(grad.Index(0, i))
		}
		return []*tensor.Tensor{full}
	})
}

// LayerNorm normalizes a over its last axis and applies a learned affine
// transform: gamma * (x - mu) / sqrt(var + eps) + beta. gamma and beta must
// be rank-1 with the size of the last axis.
func LayerNorm(a, gamma, beta *Variable, eps float64) *Variable {
	last := a.Value.Rank() - 1
	cols := a.Value.Dim(last)
	if gamma.Value.Rank() != 1 || gamma.Value.Dim(0) != cols || beta.Value.Rank() != 1 || beta.Value.Dim(0) != cols {
		panic(fmt.Sprintf("autograd: LayerNorm affine params must be rank-1 of size %d", cols))
	}
	ac := a.Value.Contiguous()
	rows := a.Value.NumElements() / cols
	src := ac.Data()
	norm := tensor.New(a.Value.Shape()...)
	nd := norm.Data()
	invStd := make([]float64, rows)
	// Row statistics are independent; fan the row loop over the worker pool.
	parallel.For(rows, parallel.GrainFor(cols, rowKernelThreshold), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := src[r*cols : (r+1)*cols]
			var mu float64
			for _, v := range row {
				mu += v
			}
			mu /= float64(cols)
			var va float64
			for _, v := range row {
				d := v - mu
				va += d * d
			}
			va /= float64(cols)
			is := 1 / math.Sqrt(va+eps)
			invStd[r] = is
			orow := nd[r*cols : (r+1)*cols]
			for i, v := range row {
				orow[i] = (v - mu) * is
			}
		}
	})
	out := tensor.Add(tensor.Mul(norm, gamma.Value), beta.Value)
	return newOp("layerNorm", out, []*Variable{a, gamma, beta}, func(grad *tensor.Tensor) []*tensor.Tensor {
		gc := grad.Contiguous()
		gd := gc.Data()
		gammaD := gamma.Value.Contiguous().Data()
		dx := tensor.New(a.Value.Shape()...)
		dxd := dx.Data()
		dGamma := tensor.New(cols)
		dBeta := tensor.New(cols)
		dgd := dGamma.Data()
		dbd := dBeta.Data()
		// dx rows are disjoint; the dGamma/dBeta accumulators are shared, so
		// each chunk sums into its own partial and the partials reduce in
		// chunk order afterwards — deterministic on any pool width, since
		// the chunk layout depends only on (rows, grain).
		grain := parallel.GrainFor(2*cols, rowKernelThreshold)
		chunks := parallel.NumChunks(rows, grain)
		partG := make([][]float64, chunks)
		partB := make([][]float64, chunks)
		parallel.ForIndexed(rows, grain, func(c, lo, hi int) {
			pg := make([]float64, cols)
			pb := make([]float64, cols)
			partG[c], partB[c] = pg, pb
			for r := lo; r < hi; r++ {
				grow := gd[r*cols : (r+1)*cols]
				nrow := nd[r*cols : (r+1)*cols]
				// dnorm = grad * gamma; classic layer-norm backward.
				var sumD, sumDN float64
				for i := 0; i < cols; i++ {
					dn := grow[i] * gammaD[i]
					sumD += dn
					sumDN += dn * nrow[i]
					pg[i] += grow[i] * nrow[i]
					pb[i] += grow[i]
				}
				is := invStd[r]
				inv := 1 / float64(cols)
				drow := dxd[r*cols : (r+1)*cols]
				for i := 0; i < cols; i++ {
					dn := grow[i] * gammaD[i]
					drow[i] = is * (dn - inv*sumD - inv*nrow[i]*sumDN)
				}
			}
		})
		for c := 0; c < chunks; c++ {
			for i := 0; i < cols; i++ {
				dgd[i] += partG[c][i]
				dbd[i] += partB[c][i]
			}
		}
		return []*tensor.Tensor{dx, dGamma, dBeta}
	})
}
