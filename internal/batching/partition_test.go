package batching

import (
	"testing"
	"testing/quick"

	"pgti/internal/tensor"
)

func partitionFixture(t *testing.T, entries, nodes, h, workers int) (*IndexDataset, *PartitionStore) {
	t.Helper()
	data := tensor.Randn(tensor.NewRNG(8), entries, nodes, 1)
	ds, err := NewIndexDataset(data, h, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewPartitionStore(ds, workers)
	if err != nil {
		t.Fatal(err)
	}
	return ds, store
}

func TestPartitionStoreValidation(t *testing.T) {
	ds, _ := partitionFixture(t, 60, 3, 4, 2)
	if _, err := NewPartitionStore(ds, 0); err == nil {
		t.Fatal("expected error for zero workers")
	}
	if _, err := NewPartitionStore(ds, 1000); err == nil {
		t.Fatal("expected error for more workers than rows")
	}
}

func TestPartitionStoreOwnership(t *testing.T) {
	_, store := partitionFixture(t, 60, 3, 4, 3)
	// Shards cover all rows exactly once, in rank order.
	covered := 0
	for r := 0; r < 3; r++ {
		lo, hi := store.LocalRows(r)
		if lo != covered {
			t.Fatalf("rank %d shard starts at %d, want %d", r, lo, covered)
		}
		for row := lo; row < hi; row++ {
			if store.OwnerOf(row) != r {
				t.Fatalf("row %d owner %d want %d", row, store.OwnerOf(row), r)
			}
		}
		covered = hi
	}
	if covered != 60 {
		t.Fatalf("shards cover %d of 60 rows", covered)
	}
	// Local bytes sum to the data's bytes.
	var total int64
	for r := 0; r < 3; r++ {
		total += store.LocalBytes(r)
	}
	if total != int64(60*3*8) {
		t.Fatalf("LocalBytes sum %d", total)
	}
}

func TestFetchBatchMatchesAssemble(t *testing.T) {
	ds, store := partitionFixture(t, 80, 4, 5, 2)
	var buf1, buf2 BatchBuffer
	batch := []int{3, 4, 5, 6}
	x1, y1 := ds.AssembleBatch(batch, &buf1)
	x2, y2, local, remote := store.FetchBatch(0, batch, &buf2)
	if !x1.Equal(x2) || !y1.Equal(y2) {
		t.Fatal("FetchBatch must assemble identical tensors")
	}
	if local+remote <= 0 {
		t.Fatal("traffic accounting missing")
	}
	// Contiguous batch [3..6] with h=5 covers rows [3, 16): all within
	// rank 0's shard [0, 40).
	if remote != 0 {
		t.Fatalf("interior batch must be fully local, remote = %d", remote)
	}
	rowBytes := int64(4 * 8)
	if local != 13*rowBytes {
		t.Fatalf("local bytes %d want %d (13 rows)", local, 13*rowBytes)
	}
}

func TestFetchBatchRemoteAccounting(t *testing.T) {
	_, store := partitionFixture(t, 80, 4, 5, 2)
	// Rank 1 fetching rank-0-resident rows: all remote.
	var buf BatchBuffer
	_, _, local, remote := store.FetchBatch(1, []int{0, 1}, &buf)
	if local != 0 || remote == 0 {
		t.Fatalf("cross-shard fetch accounting wrong: local %d remote %d", local, remote)
	}
}

// The §5.4 design rationale, measured: contiguous batch-shuffled batches on
// a worker's own partition are almost entirely local, while the same
// batches shipped as materialized windows would move ~2*horizon times the
// volume.
func TestPartitionLocalityOfBatchShuffling(t *testing.T) {
	ds, store := partitionFixture(t, 200, 4, 6, 2)
	train := make([]int, ds.NumSnapshots())
	for i := range train {
		train[i] = i
	}
	var buf BatchBuffer
	for rank := 0; rank < 2; rank++ {
		sampler := NewBatchShuffler(train, 16, 2, rank, 9)
		var local, remote, materialized int64
		for _, batch := range sampler.EpochBatches(0) {
			_, _, l, r := store.FetchBatch(rank, batch, &buf)
			local += l
			remote += r
			materialized += store.MaterializedFetchBytes(batch)
		}
		if remote >= local/4 {
			t.Fatalf("rank %d: batch-shuffled fetches should be mostly local (local %d, remote %d)", rank, local, remote)
		}
		if materialized < 5*(local+remote) {
			t.Fatalf("rank %d: materialized volume %d should dwarf index volume %d", rank, materialized, local+remote)
		}
	}
}

// epochRemoteFraction drives one epoch of the sampler's batches through the
// store on behalf of every rank and returns remote/(local+remote).
func epochRemoteFraction(store *PartitionStore, sampler func(workers, rank int) BatchSampler, workers, epoch int) float64 {
	var local, remote int64
	var buf BatchBuffer
	for rank := 0; rank < workers; rank++ {
		for _, batch := range sampler(workers, rank).EpochBatches(epoch) {
			_, _, l, r := store.FetchBatch(rank, batch, &buf)
			local += l
			remote += r
		}
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}

// Property (§5.4, the generalized-distributed-index-batching rationale):
// over random seeds, epochs, and worker counts, batch-contiguous shuffling
// keeps the remote-row fraction near zero — batches stay inside their
// worker's partition, only boundary spans cross — while snapshot-level
// (global) shuffling scatters every batch across the partitions and pays a
// majority-remote fraction.
func TestPropertyBatchShufflingStaysLocal(t *testing.T) {
	ds, _ := partitionFixture(t, 240, 3, 4, 2)
	train := make([]int, ds.NumSnapshots())
	for i := range train {
		train[i] = i
	}
	f := func(seed uint64, wRaw, eRaw uint8) bool {
		workers := int(wRaw%3) + 2 // 2..4
		epoch := int(eRaw % 5)
		store, err := NewPartitionStore(ds, workers)
		if err != nil {
			return false
		}
		batchFrac := epochRemoteFraction(store, func(w, r int) BatchSampler {
			return NewBatchShuffler(train, 8, w, r, seed)
		}, workers, epoch)
		globalFrac := epochRemoteFraction(store, func(w, r int) BatchSampler {
			return NewGlobalShuffler(train, 8, w, r, seed)
		}, workers, epoch)
		// Batch-contiguous fetches cross partitions only at shard
		// boundaries; global shuffling makes most rows remote.
		if batchFrac > 0.15 {
			t.Logf("seed %d workers %d epoch %d: batch-shuffle remote fraction %.3f", seed, workers, epoch, batchFrac)
			return false
		}
		if globalFrac < 3*batchFrac || globalFrac < 0.3 {
			t.Logf("seed %d workers %d epoch %d: global remote fraction %.3f vs batch %.3f", seed, workers, epoch, globalFrac, batchFrac)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FetchBatch traffic accounting is conserved — local+remote
// equals rowBytes x covering-span size, and assembly always matches
// AssembleBatch.
func TestPropertyFetchConservation(t *testing.T) {
	f := func(seed uint64, wRaw, bRaw uint8) bool {
		workers := int(wRaw%4) + 1
		data := tensor.Randn(tensor.NewRNG(seed), 100, 2, 1)
		ds, err := NewIndexDataset(data, 4, 0.7, nil)
		if err != nil {
			return false
		}
		store, err := NewPartitionStore(ds, workers)
		if err != nil {
			return false
		}
		start := int(seed % uint64(ds.NumSnapshots()-3))
		batch := []int{start, start + 1, start + 2}
		var buf, buf2 BatchBuffer
		x, y, local, remote := store.FetchBatch(int(bRaw)%workers, batch, &buf)
		xr, yr := ds.AssembleBatch(batch, &buf2)
		if !x.Equal(xr) || !y.Equal(yr) {
			return false
		}
		// Covering span: rows [start, start+2+2*4) = 10 rows.
		rowBytes := int64(2 * 8)
		return local+remote == 10*rowBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
