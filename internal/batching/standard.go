// Package batching implements the paper's two spatiotemporal data pipelines:
//
//   - StandardPreprocess — Algorithm 1 of the paper, the sliding-window
//     materialization used by open-source ST-GNN tools. It is implemented
//     faithfully (snapshot list -> stack -> standardize), so its measured
//     memory growth reproduces eq. (1) plus the transient copies that drive
//     the paper's OOM results.
//   - IndexDataset — index-batching, the paper's contribution: one
//     standardized copy of the data plus window-start indices, with every
//     snapshot reconstructed at runtime as a zero-copy tensor view.
//
// It also provides the train/val/test split and the three shuffling
// strategies evaluated in the paper (global, local-partition, batch-level).
package batching

import (
	"fmt"
	"math"

	"pgti/internal/memsim"
	"pgti/internal/tensor"
)

// DefaultTrainFrac and friends are the paper's split: 70/10/20.
const (
	DefaultTrainFrac = 0.70
	DefaultValFrac   = 0.10
)

// StandardResult holds the materialized feature and label arrays of
// Algorithm 1, standardized by the training split's statistics.
type StandardResult struct {
	X, Y      *tensor.Tensor // [S, horizon, N, F]
	Mean, Std float64
	Horizon   int
}

// NumSnapshots returns the number of (x, y) pairs.
func (r *StandardResult) NumSnapshots() int { return r.X.Dim(0) }

// Snapshot returns the i-th materialized (x, y) pair as views into the
// stacked arrays.
func (r *StandardResult) Snapshot(i int) (x, y *tensor.Tensor) {
	return r.X.Index(0, i), r.Y.Index(0, i)
}

// Batch gathers the given snapshot indices into fresh batched tensors of
// shape [B, horizon, N, F].
func (r *StandardResult) Batch(indices []int) (x, y *tensor.Tensor) {
	return r.X.GatherRows(indices), r.Y.GatherRows(indices)
}

// StandardPreprocess runs Algorithm 1 on a [entries, nodes, features]
// signal: extract every overlapping (x, y) window pair as copies, stack
// them, and z-score them with the training split's mean/std. Every
// allocation is registered with mem (which may be capacity-limited), so the
// function fails with an OOM error at exactly the stage a real run would
// crash. The caller owns the accounting of `data` itself.
//
// The deliberate inefficiency — snapshot lists kept alive through stacking,
// standardization into fresh arrays — mirrors the reference implementations
// the paper analyzes; see Fig. 3.
func StandardPreprocess(data *tensor.Tensor, horizon int, trainFrac float64, mem *memsim.Tracker) (*StandardResult, error) {
	if data.Rank() != 3 {
		return nil, fmt.Errorf("batching: StandardPreprocess expects [entries, nodes, features], got %v", data.Shape())
	}
	if horizon < 1 {
		return nil, fmt.Errorf("batching: horizon must be >= 1, got %d", horizon)
	}
	entries := data.Dim(0)
	s := entries - (2*horizon - 1)
	if s <= 0 {
		return nil, fmt.Errorf("batching: %d entries too short for horizon %d", entries, horizon)
	}
	if trainFrac <= 0 || trainFrac > 1 {
		trainFrac = DefaultTrainFrac
	}
	if mem == nil {
		mem = memsim.NewTracker("unlimited", 0)
	}
	snapBytes := int64(horizon) * int64(data.Dim(1)) * int64(data.Dim(2)) * 8

	// Stage 2 (Fig. 3): sliding-window extraction into snapshot lists.
	// Each append copies horizon rows of the source.
	xList := make([]*tensor.Tensor, 0, s)
	yList := make([]*tensor.Tensor, 0, s)
	for start := 0; start < s; start++ {
		if err := mem.Alloc("swa.x_list", snapBytes); err != nil {
			return nil, fmt.Errorf("batching: SWA feature extraction: %w", err)
		}
		xList = append(xList, data.Slice(0, start, start+horizon).Clone())
		if err := mem.Alloc("swa.y_list", snapBytes); err != nil {
			return nil, fmt.Errorf("batching: SWA label extraction: %w", err)
		}
		yList = append(yList, data.Slice(0, start+horizon, start+2*horizon).Clone())
	}

	// Stage 3: stack into [S, horizon, N, F] arrays (lists stay alive until
	// the end of preprocessing, as in the reference implementations).
	if err := mem.Alloc("swa.x_stacked", snapBytes*int64(s)); err != nil {
		return nil, fmt.Errorf("batching: stacking features: %w", err)
	}
	x := tensor.Stack(0, xList...)
	if err := mem.Alloc("swa.y_stacked", snapBytes*int64(s)); err != nil {
		return nil, fmt.Errorf("batching: stacking labels: %w", err)
	}
	y := tensor.Stack(0, yList...)

	// Standardize with train-split statistics, materializing new arrays.
	trainS := int(math.Round(float64(s) * trainFrac))
	if trainS < 1 {
		trainS = 1
	}
	xTrain := x.Slice(0, 0, trainS)
	mean := xTrain.MeanAll()
	std := xTrain.StdAll()
	if std == 0 {
		std = 1
	}
	zscore := func(v float64) float64 { return (v - mean) / std }
	if err := mem.Alloc("standardize.x", snapBytes*int64(s)); err != nil {
		return nil, fmt.Errorf("batching: standardizing features: %w", err)
	}
	xStd := x.Apply(zscore)
	mem.Free("swa.x_stacked", snapBytes*int64(s))
	if err := mem.Alloc("standardize.y", snapBytes*int64(s)); err != nil {
		return nil, fmt.Errorf("batching: standardizing labels: %w", err)
	}
	yStd := y.Apply(zscore)
	mem.Free("swa.y_stacked", snapBytes*int64(s))

	// Preprocessing scope ends: the snapshot lists are released.
	mem.FreeAll("swa.x_list")
	mem.FreeAll("swa.y_list")

	return &StandardResult{X: xStd, Y: yStd, Mean: mean, Std: std, Horizon: horizon}, nil
}

// StandardRetainedBytes returns the bytes a StandardResult holds after
// preprocessing completes: eq. (1) of the paper.
func (r *StandardResult) StandardRetainedBytes() int64 {
	return r.X.NumBytes() + r.Y.NumBytes()
}
