package batching

import (
	"fmt"

	"pgti/internal/tensor"
)

// PartitionStore is the data layout of generalized-distributed-index-
// batching (§5.4): the single standardized copy of the data is split
// row-wise across workers, so no worker ever holds the full dataset — the
// larger-than-memory regime. Fetching a batch retrieves the contiguous row
// range covering its snapshots; rows owned by other workers count as remote
// traffic. Because index-batched batches need each row only once (instead
// of the 2*horizon materialized copies), and batch-level shuffling keeps
// batches contiguous within a partition, almost all fetched rows are local
// — the memory-locality argument of the paper, made measurable.
type PartitionStore struct {
	ds      *IndexDataset
	workers int
	bounds  []int // worker w owns data rows [bounds[w], bounds[w+1])
}

// NewPartitionStore splits ds's rows evenly across workers.
func NewPartitionStore(ds *IndexDataset, workers int) (*PartitionStore, error) {
	if workers < 1 {
		return nil, fmt.Errorf("batching: PartitionStore needs >= 1 worker, got %d", workers)
	}
	rows := ds.Data.Dim(0)
	if rows < workers {
		return nil, fmt.Errorf("batching: %d rows cannot be partitioned across %d workers", rows, workers)
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * rows / workers
	}
	return &PartitionStore{ds: ds, workers: workers, bounds: bounds}, nil
}

// Workers returns the partition count.
func (s *PartitionStore) Workers() int { return s.workers }

// OwnerOf returns the rank owning data row `row`.
func (s *PartitionStore) OwnerOf(row int) int {
	if row < 0 || row >= s.ds.Data.Dim(0) {
		panic(fmt.Sprintf("batching: row %d out of range [0,%d)", row, s.ds.Data.Dim(0)))
	}
	// bounds is sorted and small (<= workers+1 entries).
	for w := 0; w < s.workers; w++ {
		if row < s.bounds[w+1] {
			return w
		}
	}
	return s.workers - 1
}

// LocalRows returns the row range [lo, hi) owned by rank.
func (s *PartitionStore) LocalRows(rank int) (lo, hi int) {
	if rank < 0 || rank >= s.workers {
		panic(fmt.Sprintf("batching: rank %d out of range [0,%d)", rank, s.workers))
	}
	return s.bounds[rank], s.bounds[rank+1]
}

// LocalBytes returns the bytes of rank's shard (its share of eq. 2).
func (s *PartitionStore) LocalBytes(rank int) int64 {
	lo, hi := s.LocalRows(rank)
	rowBytes := int64(s.ds.Data.Dim(1)) * int64(s.ds.Data.Dim(2)) * 8
	return int64(hi-lo) * rowBytes
}

// rowSpan returns the inclusive-exclusive data-row range a set of snapshot
// indices touches (each snapshot i covers rows [start_i, start_i + 2h)).
func (s *PartitionStore) rowSpan(indices []int) (lo, hi int) {
	lo, hi = s.ds.Data.Dim(0), 0
	for _, idx := range indices {
		start := s.ds.Starts[idx]
		if start < lo {
			lo = start
		}
		if end := start + 2*s.ds.Horizon; end > hi {
			hi = end
		}
	}
	return lo, hi
}

// FetchBatch assembles the batch exactly like IndexDataset.AssembleBatch
// and additionally accounts the row traffic: bytes served from rank's own
// shard vs fetched from remote shards. Each distinct data row in the
// covering span is counted once — the index-batching volume advantage over
// shipping materialized windows.
func (s *PartitionStore) FetchBatch(rank int, indices []int, buf *BatchBuffer) (x, y *tensor.Tensor, localBytes, remoteBytes int64) {
	rowBytes := int64(s.ds.Data.Dim(1)) * int64(s.ds.Data.Dim(2)) * 8
	lo, hi := s.rowSpan(indices)
	myLo, myHi := s.LocalRows(rank)
	for r := lo; r < hi; r++ {
		if r >= myLo && r < myHi {
			localBytes += rowBytes
		} else {
			remoteBytes += rowBytes
		}
	}
	x, y = s.ds.AssembleBatch(indices, buf)
	return x, y, localBytes, remoteBytes
}

// MaterializedFetchBytes returns what the same batch would cost under
// standard DDP: every snapshot ships its full 2*horizon-row window,
// overlaps and all (the Fig. 9 baseline volume).
func (s *PartitionStore) MaterializedFetchBytes(indices []int) int64 {
	rowBytes := int64(s.ds.Data.Dim(1)) * int64(s.ds.Data.Dim(2)) * 8
	return int64(len(indices)) * int64(2*s.ds.Horizon) * rowBytes
}
