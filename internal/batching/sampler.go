package batching

import (
	"fmt"
	"math"

	"pgti/internal/tensor"
)

// Split is the temporal 70/10/20 train/validation/test division of the
// snapshot indices used throughout the paper.
type Split struct {
	Train, Val, Test []int
}

// MakeSplit divides [0, n) contiguously: the first trainFrac for training,
// the next valFrac for validation, the remainder for test — the temporal
// split of the reference DCRNN pipeline (shuffling across the split
// boundary would leak future data). Boundary sizes are the *rounded*
// products round(n*frac), not truncated ones: truncation drifted each
// boundary by up to one index depending on how n*frac landed in binary
// (and a tiny valFrac could silently produce an empty Val split).
func MakeSplit(n int, trainFrac, valFrac float64) Split {
	if trainFrac <= 0 {
		trainFrac = DefaultTrainFrac
	}
	if valFrac <= 0 {
		valFrac = DefaultValFrac
	}
	trainEnd := int(math.Round(float64(n) * trainFrac))
	if trainEnd > n {
		trainEnd = n
	}
	valEnd := trainEnd + int(math.Round(float64(n)*valFrac))
	if valEnd > n {
		valEnd = n
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return Split{Train: all[:trainEnd], Val: all[trainEnd:valEnd], Test: all[valEnd:]}
}

// Batches chunks indices into groups of batchSize (the final batch may be
// short).
func Batches(indices []int, batchSize int) [][]int {
	if batchSize < 1 {
		panic(fmt.Sprintf("batching: batch size %d", batchSize))
	}
	out := make([][]int, 0, (len(indices)+batchSize-1)/batchSize)
	for lo := 0; lo < len(indices); lo += batchSize {
		hi := lo + batchSize
		if hi > len(indices) {
			hi = len(indices)
		}
		out = append(out, indices[lo:hi])
	}
	return out
}

// PartitionRange returns worker `rank`'s contiguous shard [lo, hi) of n
// items split across `workers` shards, balanced to within one item.
func PartitionRange(n, workers, rank int) (lo, hi int) {
	if workers < 1 || rank < 0 || rank >= workers {
		panic(fmt.Sprintf("batching: invalid partition rank %d of %d", rank, workers))
	}
	base := n / workers
	extra := n % workers
	lo = rank*base + minInt(rank, extra)
	hi = lo + base
	if rank < extra {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BatchSampler yields each worker's batch schedule for an epoch. All
// implementations are deterministic functions of (seed, epoch, rank), so
// workers coordinate without communication — the property
// distributed-index-batching relies on for communication-free global
// shuffling.
type BatchSampler interface {
	// EpochBatches returns this worker's ordered batches for the epoch.
	EpochBatches(epoch int) [][]int
	// Describe names the strategy for reports.
	Describe() string
}

// GlobalShuffler implements the paper's global shuffling: every epoch, all
// workers derive the same seeded permutation of the full training set, and
// each takes its contiguous shard. Requires every worker to hold the full
// dataset locally (distributed-index-batching's arrangement).
type GlobalShuffler struct {
	indices   []int
	batchSize int
	workers   int
	rank      int
	seed      uint64
}

// NewGlobalShuffler constructs the sampler for one worker.
func NewGlobalShuffler(indices []int, batchSize, workers, rank int, seed uint64) *GlobalShuffler {
	return &GlobalShuffler{indices: indices, batchSize: batchSize, workers: workers, rank: rank, seed: seed}
}

// EpochBatches implements BatchSampler.
func (g *GlobalShuffler) EpochBatches(epoch int) [][]int {
	perm := make([]int, len(g.indices))
	copy(perm, g.indices)
	rng := tensor.NewRNG(g.seed ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	rng.Shuffle(perm)
	lo, hi := PartitionRange(len(perm), g.workers, g.rank)
	return Batches(perm[lo:hi], g.batchSize)
}

// Describe implements BatchSampler.
func (g *GlobalShuffler) Describe() string { return "global-shuffle" }

// LocalShuffler implements local shuffling: each worker owns a fixed
// contiguous partition of the data and shuffles only within it. The paper
// cites this as the convergence-risky strategy (Meng et al., Nguyen et al.)
// that global shuffling avoids.
type LocalShuffler struct {
	partition []int
	batchSize int
	rank      int
	seed      uint64
}

// NewLocalShuffler constructs a local shuffler over worker `rank`'s fixed
// shard of indices.
func NewLocalShuffler(indices []int, batchSize, workers, rank int, seed uint64) *LocalShuffler {
	lo, hi := PartitionRange(len(indices), workers, rank)
	part := make([]int, hi-lo)
	copy(part, indices[lo:hi])
	return &LocalShuffler{partition: part, batchSize: batchSize, rank: rank, seed: seed}
}

// EpochBatches implements BatchSampler.
func (l *LocalShuffler) EpochBatches(epoch int) [][]int {
	perm := make([]int, len(l.partition))
	copy(perm, l.partition)
	rng := tensor.NewRNG(l.seed ^ uint64(l.rank)<<32 ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	rng.Shuffle(perm)
	return Batches(perm, l.batchSize)
}

// Describe implements BatchSampler.
func (l *LocalShuffler) Describe() string { return "local-shuffle" }

// BatchShuffler implements the batch-level local shuffling of §5.4
// (generalized-distributed-index-batching): each worker's partition is
// pre-chunked into fixed batches; epochs shuffle only the *order* of the
// batches, keeping their contents contiguous for memory locality and
// one-fetch-per-batch communication.
type BatchShuffler struct {
	batches [][]int
	rank    int
	seed    uint64
}

// NewBatchShuffler constructs the sampler over worker `rank`'s fixed shard.
func NewBatchShuffler(indices []int, batchSize, workers, rank int, seed uint64) *BatchShuffler {
	lo, hi := PartitionRange(len(indices), workers, rank)
	part := make([]int, hi-lo)
	copy(part, indices[lo:hi])
	return &BatchShuffler{batches: Batches(part, batchSize), rank: rank, seed: seed}
}

// EpochBatches implements BatchSampler.
func (b *BatchShuffler) EpochBatches(epoch int) [][]int {
	order := make([]int, len(b.batches))
	for i := range order {
		order[i] = i
	}
	rng := tensor.NewRNG(b.seed ^ uint64(b.rank)<<32 ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	rng.Shuffle(order)
	out := make([][]int, len(order))
	for i, bi := range order {
		out[i] = b.batches[bi]
	}
	return out
}

// Describe implements BatchSampler.
func (b *BatchShuffler) Describe() string { return "batch-shuffle" }
