package batching

import (
	"runtime"
	"testing"
	"time"

	"pgti/internal/tensor"
)

func prefetchDataset(t *testing.T, nodes int) (*IndexDataset, [][]int) {
	t.Helper()
	raw := tensor.Randn(tensor.NewRNG(99), 64, nodes, 1)
	ds, err := NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	split := MakeSplit(ds.NumSnapshots(), 0.7, 0.1)
	return ds, Batches(split.Train, 4)
}

// TestPrefetcherBitwiseMatchesSerial: every batch handed out by the pipeline
// is bitwise identical to a serial AssembleBatch of the same indices. Run
// under -race this also exercises the double-buffer contract: the consumer
// reads batch i in full while the producer is concurrently assembling batch
// i+1 into the other slot — a single shared buffer would be a write/read race
// the detector flags.
func TestPrefetcherBitwiseMatchesSerial(t *testing.T) {
	ds, batches := prefetchDataset(t, 8)
	p := NewPrefetcher(ds, batches)
	defer p.Close()

	var ref BatchBuffer
	n := 0
	for {
		x, y, ok := p.Next()
		if !ok {
			break
		}
		// Touch every element of the handed-out views before re-checking
		// them, so a torn slot cannot masquerade as a transient.
		var sum float64
		for _, v := range x.Data() {
			sum += v
		}
		for _, v := range y.Data() {
			sum += v
		}
		_ = sum
		rx, ry := ds.AssembleBatch(batches[n], &ref)
		if !x.Equal(rx) || !y.Equal(ry) {
			t.Fatalf("batch %d: prefetched contents differ from serial assembly", n)
		}
		n++
	}
	if n != len(batches) {
		t.Fatalf("prefetcher yielded %d batches, want %d", n, len(batches))
	}
}

// TestPrefetcherOneDeep: the pipeline never runs more than one assembled
// batch ahead of the consumer — with the consumer holding batch 0, only
// batch 1 can be in flight, so closing then draining shows no skipped slots.
func TestPrefetcherOneDeep(t *testing.T) {
	ds, batches := prefetchDataset(t, 4)
	if len(batches) < 3 {
		t.Fatalf("need at least 3 batches, got %d", len(batches))
	}
	p := NewPrefetcher(ds, batches)
	defer p.Close()

	var ref BatchBuffer
	x0, _, ok := p.Next()
	if !ok {
		t.Fatal("no first batch")
	}
	// Give the producer time to overrun if it were going to: at most batch 1
	// may be assembled (into the other slot) and parked in the handoff.
	time.Sleep(20 * time.Millisecond)
	rx0, _ := ds.AssembleBatch(batches[0], &ref)
	if !x0.Equal(rx0) {
		t.Fatal("batch 0 was overwritten while the consumer still held it")
	}
	x1, _, ok := p.Next()
	if !ok {
		t.Fatal("no second batch")
	}
	rx1, _ := ds.AssembleBatch(batches[1], &ref)
	if !x1.Equal(rx1) {
		t.Fatal("batch 1 contents wrong after one-deep handoff")
	}
}

// TestPrefetcherCloseMidStreamNoLeak: cancelling mid-schedule reclaims the
// assembly goroutine, and Close is idempotent.
func TestPrefetcherCloseMidStreamNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 8; trial++ {
		ds, batches := prefetchDataset(t, 4)
		p := NewPrefetcher(ds, batches)
		if _, _, ok := p.Next(); !ok {
			t.Fatal("no first batch")
		}
		p.Close()
		p.Close() // idempotent
		if _, _, ok := p.Next(); ok {
			t.Fatal("Next returned a batch after Close")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPrefetcherExhaustedThenClose: letting the schedule drain naturally and
// then closing must not hang or panic.
func TestPrefetcherExhaustedThenClose(t *testing.T) {
	ds, batches := prefetchDataset(t, 4)
	p := NewPrefetcher(ds, batches)
	for {
		if _, _, ok := p.Next(); !ok {
			break
		}
	}
	p.Close()
}
