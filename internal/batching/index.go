package batching

import (
	"fmt"
	"math"

	"pgti/internal/memsim"
	"pgti/internal/parallel"
	"pgti/internal/tensor"
)

// IndexDataset is the paper's index-batching data structure: one
// standardized copy of the signal, plus the array of window-start graph IDs.
// Snapshot i is reconstructed on demand as the pair of zero-copy views
//
//	x = data[start : start+horizon]
//	y = data[start+horizon : start+2*horizon]
//
// so the structure's footprint is eq. (2): entries*nodes*features*8 bytes of
// data plus 8 bytes per snapshot of indices, independent of the horizon.
type IndexDataset struct {
	Data      *tensor.Tensor // standardized [entries, nodes, features]
	Horizon   int
	Mean, Std float64
	Starts    []int // graph IDs of the first entry of each snapshot
}

// NewIndexDataset builds an IndexDataset over data (standardizing it IN
// PLACE — the dataset takes ownership, eliminating the duplicate copies of
// Algorithm 1). Only the index array is newly allocated; it is registered
// with mem under "index.starts".
//
// The training-split statistics are computed with per-row window-coverage
// weights, which makes them algebraically identical to Algorithm 1's
// mean/std over the materialized x_train — without materializing anything.
func NewIndexDataset(data *tensor.Tensor, horizon int, trainFrac float64, mem *memsim.Tracker) (*IndexDataset, error) {
	if data.Rank() != 3 {
		return nil, fmt.Errorf("batching: NewIndexDataset expects [entries, nodes, features], got %v", data.Shape())
	}
	if horizon < 1 {
		return nil, fmt.Errorf("batching: horizon must be >= 1, got %d", horizon)
	}
	if !data.IsContiguous() {
		return nil, fmt.Errorf("batching: NewIndexDataset requires contiguous data (views would alias the caller's storage unpredictably)")
	}
	entries := data.Dim(0)
	s := entries - (2*horizon - 1)
	if s <= 0 {
		return nil, fmt.Errorf("batching: %d entries too short for horizon %d", entries, horizon)
	}
	if trainFrac <= 0 || trainFrac > 1 {
		trainFrac = DefaultTrainFrac
	}
	if mem == nil {
		mem = memsim.NewTracker("unlimited", 0)
	}
	if err := mem.Alloc("index.starts", int64(s)*8); err != nil {
		return nil, fmt.Errorf("batching: allocating index array: %w", err)
	}
	starts := make([]int, s)
	for i := range starts {
		starts[i] = i
	}

	trainS := int(math.Round(float64(s) * trainFrac))
	if trainS < 1 {
		trainS = 1
	}
	mean, std := weightedTrainStats(data, horizon, trainS)
	if std == 0 {
		std = 1
	}
	data.ApplyInPlace(func(v float64) float64 { return (v - mean) / std })

	return &IndexDataset{Data: data, Horizon: horizon, Mean: mean, Std: std, Starts: starts}, nil
}

// weightedTrainStats computes the mean and population std of the virtual
// materialized x_train (windows 0..trainS-1, each covering horizon rows)
// directly from the flat data. Row t of the data appears in
//
//	w(t) = max(0, min(t, trainS-1) - max(0, t-horizon+1) + 1)
//
// training windows, so the materialized sum is the w-weighted sum of row
// aggregates — an O(entries) computation instead of O(entries*horizon).
func weightedTrainStats(data *tensor.Tensor, horizon, trainS int) (mean, std float64) {
	rowElems := data.Dim(1) * data.Dim(2)
	totalCount := float64(trainS) * float64(horizon) * float64(rowElems)
	var sum, sumSq float64
	lastRow := trainS + horizon - 1 // rows beyond this have zero weight
	for t := 0; t < lastRow && t < data.Dim(0); t++ {
		lo := t - horizon + 1
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > trainS-1 {
			hi = trainS - 1
		}
		w := float64(hi - lo + 1)
		if w <= 0 {
			continue
		}
		row := data.Index(0, t)
		it := row.Contiguous().Data()
		var rs, rss float64
		for _, v := range it {
			rs += v
			rss += v * v
		}
		sum += w * rs
		sumSq += w * rss
	}
	mean = sum / totalCount
	variance := sumSq/totalCount - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// NumSnapshots returns the number of (x, y) pairs.
func (d *IndexDataset) NumSnapshots() int { return len(d.Starts) }

// Snapshot reconstructs snapshot i as zero-copy views (Fig. 4 of the
// paper): x = data[start:start+h], y = data[start+h:start+2h].
func (d *IndexDataset) Snapshot(i int) (x, y *tensor.Tensor) {
	start := d.Starts[i]
	x = d.Data.Slice(0, start, start+d.Horizon)
	y = d.Data.Slice(0, start+d.Horizon, start+2*d.Horizon)
	return x, y
}

// RetainedBytes returns eq. (2): the data copy plus the index array.
func (d *IndexDataset) RetainedBytes() int64 {
	return d.Data.NumBytes() + int64(len(d.Starts))*8
}

// BatchBuffer is a reusable staging area for batched snapshots, so steady-
// state training allocates nothing per batch (the transient that remains is
// the batch itself, exactly as in the paper's workflow where views are
// collated into the training batch).
type BatchBuffer struct {
	x, y *tensor.Tensor
}

// AssembleBatch collates the given snapshot indices into batched tensors of
// shape [B, horizon, N, F], reusing buf's storage when it is large enough.
// A buffer previously filled by a dataset with a different horizon or graph
// shape is reallocated rather than silently reused (the per-snapshot layout
// would not line up and the batch would be corrupt).
func (d *IndexDataset) AssembleBatch(indices []int, buf *BatchBuffer) (x, y *tensor.Tensor) {
	b := len(indices)
	n, f := d.Data.Dim(1), d.Data.Dim(2)
	if buf.x == nil || buf.x.Dim(0) < b ||
		buf.x.Dim(1) != d.Horizon || buf.x.Dim(2) != n || buf.x.Dim(3) != f {
		buf.x = tensor.New(b, d.Horizon, n, f)
		buf.y = tensor.New(b, d.Horizon, n, f)
	}
	x = buf.x.Slice(0, 0, b)
	y = buf.y.Slice(0, 0, b)
	// Index-gather: each batch slot copies a disjoint [horizon, N, F] pair,
	// so slots fan out over the worker pool (grain sized to keep one chunk's
	// copied volume above the element-wise threshold).
	grain := parallel.GrainFor(2*d.Horizon*n*f, 16*1024)
	parallel.For(b, grain, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			sx, sy := d.Snapshot(indices[bi])
			x.Index(0, bi).CopyFrom(sx)
			y.Index(0, bi).CopyFrom(sy)
		}
	})
	return x, y
}
