package batching

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pgti/internal/memsim"
	"pgti/internal/tensor"
)

func signal(seed uint64, entries, nodes, features int) *tensor.Tensor {
	return tensor.Randn(tensor.NewRNG(seed), entries, nodes, features)
}

func TestStandardPreprocessShapes(t *testing.T) {
	data := signal(1, 40, 5, 2)
	res, err := StandardPreprocess(data, 4, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := 40 - (2*4 - 1)
	if res.NumSnapshots() != s {
		t.Fatalf("snapshots %d want %d", res.NumSnapshots(), s)
	}
	if sh := res.X.Shape(); sh[0] != s || sh[1] != 4 || sh[2] != 5 || sh[3] != 2 {
		t.Fatalf("X shape %v", sh)
	}
	if !res.X.SameShape(res.Y) {
		t.Fatal("X and Y must have the same shape")
	}
}

func TestStandardPreprocessWindowSemantics(t *testing.T) {
	// Data where entry t has constant value t: window contents are exact.
	entries, h := 12, 3
	data := tensor.New(entries, 2, 1)
	for e := 0; e < entries; e++ {
		data.Index(0, e).Fill(float64(e))
	}
	res, err := StandardPreprocess(data, h, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Undo standardization to compare against raw values.
	unz := func(v float64) float64 { return v*res.Std + res.Mean }
	x0, y0 := res.Snapshot(0)
	if got := unz(x0.At(2, 0, 0)); math.Abs(got-2) > 1e-9 {
		t.Fatalf("x0 last row %v want 2", got)
	}
	if got := unz(y0.At(0, 0, 0)); math.Abs(got-3) > 1e-9 {
		t.Fatalf("y0 first row %v want 3 (y = data[start+h:start+2h])", got)
	}
	x2, y2 := res.Snapshot(2)
	if got := unz(x2.At(0, 1, 0)); math.Abs(got-2) > 1e-9 {
		t.Fatalf("x2 first row %v want 2", got)
	}
	if got := unz(y2.At(2, 1, 0)); math.Abs(got-7) > 1e-9 {
		t.Fatalf("y2 last row %v want 7", got)
	}
}

func TestStandardPreprocessMemoryAccounting(t *testing.T) {
	mem := memsim.NewTracker("sys", 0)
	data := signal(2, 30, 4, 2)
	res, err := StandardPreprocess(data, 3, 0.7, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Retained after preprocessing = eq. (1).
	eq1 := 2 * int64(30-5) * 3 * 4 * 2 * 8
	if got := res.StandardRetainedBytes(); got != eq1 {
		t.Fatalf("retained %d want eq1 %d", got, eq1)
	}
	if mem.Current() != eq1 {
		t.Fatalf("tracker current %d want %d", mem.Current(), eq1)
	}
	// Peak = lists (eq1) + stacked (eq1) + one standardize temp (eq1/2).
	wantPeak := eq1 + eq1 + eq1/2
	if mem.Peak() != wantPeak {
		t.Fatalf("tracker peak %d want %d", mem.Peak(), wantPeak)
	}
}

func TestStandardPreprocessOOM(t *testing.T) {
	// Capacity large enough for the lists but not the stacked arrays:
	// the crash must happen at the stacking stage, like the paper's PeMS run.
	eq1 := 2 * int64(30-5) * 3 * 4 * 2 * 8
	mem := memsim.NewTracker("node", eq1+eq1/4)
	data := signal(3, 30, 4, 2)
	_, err := StandardPreprocess(data, 3, 0.7, mem)
	if err == nil {
		t.Fatal("expected OOM")
	}
	if mem.Peak() != mem.Capacity() {
		t.Fatal("peak must pin to capacity on OOM")
	}
}

func TestIndexDatasetSnapshotsAreViews(t *testing.T) {
	data := signal(4, 40, 5, 2)
	idx, err := NewIndexDataset(data, 4, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := idx.Snapshot(3)
	if !x.SharesStorage(idx.Data) || !y.SharesStorage(idx.Data) {
		t.Fatal("snapshots must be zero-copy views")
	}
	if x.Dim(0) != 4 || y.Dim(0) != 4 {
		t.Fatal("window length wrong")
	}
}

// The paper's core equivalence: index-batching feeds byte-identical
// snapshots to the model as standard batching.
func TestIndexMatchesStandardSnapshots(t *testing.T) {
	raw := signal(5, 60, 6, 2)
	std, err := StandardPreprocess(raw.Clone(), 5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndexDataset(raw.Clone(), 5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(std.Mean-idx.Mean) > 1e-9*(1+math.Abs(std.Mean)) {
		t.Fatalf("means differ: %v vs %v", std.Mean, idx.Mean)
	}
	if math.Abs(std.Std-idx.Std) > 1e-9*(1+std.Std) {
		t.Fatalf("stds differ: %v vs %v", std.Std, idx.Std)
	}
	if std.NumSnapshots() != idx.NumSnapshots() {
		t.Fatalf("snapshot counts differ: %d vs %d", std.NumSnapshots(), idx.NumSnapshots())
	}
	for i := 0; i < std.NumSnapshots(); i++ {
		sx, sy := std.Snapshot(i)
		ix, iy := idx.Snapshot(i)
		if !sx.AllClose(ix, 1e-9) || !sy.AllClose(iy, 1e-9) {
			t.Fatalf("snapshot %d differs between pipelines", i)
		}
	}
}

// Property: the equivalence holds for random shapes, horizons, and splits.
func TestPropertyIndexStandardEquivalence(t *testing.T) {
	f := func(seed uint64, hRaw, nRaw uint8) bool {
		h := int(hRaw%6) + 1
		nodes := int(nRaw%5) + 1
		entries := 2*h + 1 + int(seed%40)
		raw := signal(seed, entries, nodes, 1)
		std, err := StandardPreprocess(raw.Clone(), h, 0.7, nil)
		if err != nil {
			return false
		}
		idx, err := NewIndexDataset(raw.Clone(), h, 0.7, nil)
		if err != nil {
			return false
		}
		for i := 0; i < std.NumSnapshots(); i++ {
			sx, sy := std.Snapshot(i)
			ix, iy := idx.Snapshot(i)
			if !sx.AllClose(ix, 1e-9) || !sy.AllClose(iy, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDatasetMemoryIsEq2(t *testing.T) {
	mem := memsim.NewTracker("sys", 0)
	entries, nodes, features, h := 50, 4, 2, 5
	data := signal(6, entries, nodes, features)
	dataBytes := data.NumBytes()
	mem.MustAlloc("data", dataBytes) // the caller owns the single data copy
	idx, err := NewIndexDataset(data, h, 0.7, mem)
	if err != nil {
		t.Fatal(err)
	}
	eq2 := int64(entries)*int64(nodes)*int64(features)*8 + int64(entries-(2*h-1))*8
	if got := idx.RetainedBytes(); got != eq2 {
		t.Fatalf("RetainedBytes %d want eq2 %d", got, eq2)
	}
	if mem.Current() != eq2 {
		t.Fatalf("tracker current %d want eq2 %d", mem.Current(), eq2)
	}
	// Peak never exceeded eq2: no transient duplication at all.
	if mem.Peak() != eq2 {
		t.Fatalf("tracker peak %d want eq2 %d", mem.Peak(), eq2)
	}
}

func TestIndexDatasetValidation(t *testing.T) {
	if _, err := NewIndexDataset(tensor.New(4, 4), 2, 0.7, nil); err == nil {
		t.Fatal("rank-2 data must fail")
	}
	if _, err := NewIndexDataset(tensor.New(5, 2, 1), 3, 0.7, nil); err == nil {
		t.Fatal("too-short series must fail")
	}
	if _, err := NewIndexDataset(tensor.New(30, 2, 1), 0, 0.7, nil); err == nil {
		t.Fatal("zero horizon must fail")
	}
	nonContig := tensor.New(30, 2, 2).Slice(2, 0, 1)
	if _, err := NewIndexDataset(nonContig, 3, 0.7, nil); err == nil {
		t.Fatal("non-contiguous data must fail")
	}
}

func TestAssembleBatchMatchesSnapshots(t *testing.T) {
	data := signal(7, 40, 3, 2)
	idx, err := NewIndexDataset(data, 4, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf BatchBuffer
	batch := []int{5, 0, 9}
	x, y := idx.AssembleBatch(batch, &buf)
	if x.Dim(0) != 3 || x.Dim(1) != 4 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	for bi, si := range batch {
		sx, sy := idx.Snapshot(si)
		if !x.Index(0, bi).Equal(sx) || !y.Index(0, bi).Equal(sy) {
			t.Fatalf("batch element %d mismatch", bi)
		}
	}
	// Buffer reuse: a second call with fewer items must reuse storage.
	x2, _ := idx.AssembleBatch([]int{1, 2}, &buf)
	if !x2.SharesStorage(buf.x) {
		t.Fatal("AssembleBatch must reuse the buffer")
	}
	if x2.Dim(0) != 2 {
		t.Fatalf("reused batch shape %v", x2.Shape())
	}
}

func TestMakeSplit(t *testing.T) {
	s := MakeSplit(100, 0.7, 0.1)
	if len(s.Train) != 70 || len(s.Val) != 10 || len(s.Test) != 20 {
		t.Fatalf("split sizes %d/%d/%d", len(s.Train), len(s.Val), len(s.Test))
	}
	// Temporal ordering: train indices precede val precede test.
	if s.Train[69] >= s.Val[0] || s.Val[9] >= s.Test[0] {
		t.Fatal("split must be temporally contiguous")
	}
	// Defaults kick in for zero fractions.
	d := MakeSplit(10, 0, 0)
	if len(d.Train) != 7 || len(d.Val) != 1 || len(d.Test) != 2 {
		t.Fatalf("default split %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
	}
}

// Property: MakeSplit tiles [0, n) exactly — Train ++ Val ++ Test is the
// identity sequence — and the boundary sizes are the rounded products
// round(n*frac) (clamped to n), not float-truncated ones. The old
// int(float64(n)*frac) boundaries drifted by one for n where the product
// landed just below an integer in binary (e.g. 0.7*110 = 76.999...), and a
// tiny valFrac could silently yield an empty Val split.
func TestPropertyMakeSplitTilesExactly(t *testing.T) {
	fracs := []struct{ train, val float64 }{
		{0.7, 0.1}, {0.7, 0.2}, {0.8, 0.1}, {0.6, 0.3}, {0.7, 0.001}, {0, 0},
	}
	f := func(nRaw uint16) bool {
		n := int(nRaw) % 10001 // n in [0, 10000]
		for _, fr := range fracs {
			s := MakeSplit(n, fr.train, fr.val)
			trainFrac, valFrac := fr.train, fr.val
			if trainFrac <= 0 {
				trainFrac = DefaultTrainFrac
			}
			if valFrac <= 0 {
				valFrac = DefaultValFrac
			}
			wantTrain := int(math.Round(float64(n) * trainFrac))
			if wantTrain > n {
				wantTrain = n
			}
			wantVal := int(math.Round(float64(n) * valFrac))
			if wantTrain+wantVal > n {
				wantVal = n - wantTrain
			}
			if len(s.Train) != wantTrain || len(s.Val) != wantVal {
				return false
			}
			// The three parts tile [0, n) in temporal order.
			next := 0
			for _, part := range [][]int{s.Train, s.Val, s.Test} {
				for _, v := range part {
					if v != next {
						return false
					}
					next++
				}
			}
			if next != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// The concrete truncation victim: 0.7*110 is 76.999... in binary, so the
	// old code produced a 76-snapshot train split; rounding restores 77.
	if s := MakeSplit(110, 0.7, 0.1); len(s.Train) != 77 || len(s.Val) != 11 || len(s.Test) != 22 {
		t.Fatalf("n=110 split %d/%d/%d, want 77/11/22", len(s.Train), len(s.Val), len(s.Test))
	}
	// A tiny-but-positive valFrac must still carve a nonempty Val once
	// n*valFrac rounds to >= 1.
	if s := MakeSplit(1000, 0.7, 0.001); len(s.Val) != 1 {
		t.Fatalf("valFrac=0.001 at n=1000 gave %d val snapshots, want 1", len(s.Val))
	}
}

func TestBatches(t *testing.T) {
	b := Batches([]int{0, 1, 2, 3, 4}, 2)
	if len(b) != 3 || len(b[2]) != 1 || b[2][0] != 4 {
		t.Fatalf("batches %v", b)
	}
}

func TestPartitionRangeCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		covered := make([]bool, 20)
		for r := 0; r < workers; r++ {
			lo, hi := PartitionRange(20, workers, r)
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("index %d covered twice", i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("index %d not covered with %d workers", i, workers)
			}
		}
	}
}

// collectAll flattens a worker's epoch batches into a sorted index list.
func collectAll(batches [][]int) []int {
	var out []int
	for _, b := range batches {
		out = append(out, b...)
	}
	sort.Ints(out)
	return out
}

func TestGlobalShufflerPartitionIsExactCover(t *testing.T) {
	indices := make([]int, 97)
	for i := range indices {
		indices[i] = i + 100
	}
	workers := 4
	var all []int
	for r := 0; r < workers; r++ {
		s := NewGlobalShuffler(indices, 8, workers, r, 42)
		all = append(all, collectAll(s.EpochBatches(3))...)
	}
	sort.Ints(all)
	if len(all) != len(indices) {
		t.Fatalf("global shuffle coverage %d want %d", len(all), len(indices))
	}
	for i, v := range all {
		if v != i+100 {
			t.Fatalf("missing or duplicated index at %d: %d", i, v)
		}
	}
}

func TestGlobalShufflerEpochsDifferButAreDeterministic(t *testing.T) {
	indices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a := NewGlobalShuffler(indices, 3, 1, 0, 7)
	b := NewGlobalShuffler(indices, 3, 1, 0, 7)
	e0a := collectFlat(a.EpochBatches(0))
	e0b := collectFlat(b.EpochBatches(0))
	for i := range e0a {
		if e0a[i] != e0b[i] {
			t.Fatal("same (seed, epoch) must give same order")
		}
	}
	e1 := collectFlat(a.EpochBatches(1))
	same := true
	for i := range e0a {
		if e0a[i] != e1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different epochs should reshuffle")
	}
}

func collectFlat(batches [][]int) []int {
	var out []int
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func TestLocalShufflerStaysInPartition(t *testing.T) {
	indices := make([]int, 40)
	for i := range indices {
		indices[i] = i
	}
	s := NewLocalShuffler(indices, 4, 4, 1, 9)
	lo, hi := PartitionRange(40, 4, 1)
	for epoch := 0; epoch < 3; epoch++ {
		for _, v := range collectFlat(s.EpochBatches(epoch)) {
			if v < lo || v >= hi {
				t.Fatalf("epoch %d leaked index %d outside [%d,%d)", epoch, v, lo, hi)
			}
		}
	}
}

func TestBatchShufflerKeepsBatchContentsFixed(t *testing.T) {
	indices := make([]int, 24)
	for i := range indices {
		indices[i] = i
	}
	s := NewBatchShuffler(indices, 4, 2, 0, 11)
	key := func(b []int) int { return b[0] }
	contents := map[int][]int{}
	for _, b := range s.EpochBatches(0) {
		contents[key(b)] = append([]int{}, b...)
	}
	for epoch := 1; epoch < 4; epoch++ {
		for _, b := range s.EpochBatches(epoch) {
			want := contents[key(b)]
			if len(want) != len(b) {
				t.Fatal("batch contents changed across epochs")
			}
			for i := range b {
				if b[i] != want[i] {
					t.Fatal("batch contents must be fixed; only order shuffles")
				}
			}
		}
	}
}

func TestSamplerDescribe(t *testing.T) {
	idx := []int{0, 1, 2, 3}
	if NewGlobalShuffler(idx, 2, 1, 0, 1).Describe() != "global-shuffle" ||
		NewLocalShuffler(idx, 2, 1, 0, 1).Describe() != "local-shuffle" ||
		NewBatchShuffler(idx, 2, 1, 0, 1).Describe() != "batch-shuffle" {
		t.Fatal("Describe strings wrong")
	}
}

// Property: every sampler visits each of its worker-set indices exactly once
// per epoch.
func TestPropertySamplersArePermutations(t *testing.T) {
	f := func(seed uint64, nRaw, wRaw, bRaw uint8) bool {
		n := int(nRaw%50) + 4
		workers := int(wRaw%4) + 1
		batch := int(bRaw%8) + 1
		indices := make([]int, n)
		for i := range indices {
			indices[i] = i
		}
		samplers := []BatchSampler{}
		for r := 0; r < workers; r++ {
			samplers = append(samplers,
				NewGlobalShuffler(indices, batch, workers, r, seed),
				NewLocalShuffler(indices, batch, workers, r, seed),
				NewBatchShuffler(indices, batch, workers, r, seed))
		}
		// Per strategy, the union across workers must be exactly [0, n).
		for strat := 0; strat < 3; strat++ {
			var union []int
			for r := 0; r < workers; r++ {
				union = append(union, collectFlat(samplers[r*3+strat].EpochBatches(int(seed%5)))...)
			}
			sort.Ints(union)
			if len(union) != n {
				return false
			}
			for i, v := range union {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleBatchReallocatesOnShapeMismatch is the regression test for the
// buffer-reuse corruption: a BatchBuffer filled by a dataset with one
// (horizon, N, F) layout must not be silently reused by a dataset with a
// different layout — the views would collate garbage. The shape check must
// reallocate instead.
func TestAssembleBatchReallocatesOnShapeMismatch(t *testing.T) {
	a, err := NewIndexDataset(signal(11, 40, 3, 2), 4, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIndexDataset(signal(12, 40, 5, 1), 3, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf BatchBuffer
	a.AssembleBatch([]int{0, 1, 2}, &buf)

	// Same buffer, different horizon/N/F — and a smaller batch, so the old
	// capacity check alone would have reused the stale layout.
	batch := []int{4, 7}
	x, y := b.AssembleBatch(batch, &buf)
	wantShape := []int{2, 3, 5, 1}
	for d, w := range wantShape {
		if x.Dim(d) != w || y.Dim(d) != w {
			t.Fatalf("batch shape x=%v y=%v, want %v", x.Shape(), y.Shape(), wantShape)
		}
	}
	for bi, si := range batch {
		sx, sy := b.Snapshot(si)
		if !x.Index(0, bi).Equal(sx) || !y.Index(0, bi).Equal(sy) {
			t.Fatalf("batch element %d corrupted by stale buffer", bi)
		}
	}

	// Matching layout still reuses storage.
	x2, _ := b.AssembleBatch([]int{1}, &buf)
	if !x2.SharesStorage(buf.x) {
		t.Fatal("matching-shape AssembleBatch must reuse the buffer")
	}
}

// naiveTrainStats materializes every training window like Algorithm 1 and
// returns the mean and population std over the materialized x_train — the
// reference weightedTrainStats must match exactly.
func naiveTrainStats(data *tensor.Tensor, horizon, trainS int) (mean, std float64) {
	var sum, sumSq, count float64
	for s := 0; s < trainS; s++ {
		for tIdx := s; tIdx < s+horizon; tIdx++ {
			row := data.Index(0, tIdx).Contiguous().Data()
			for _, v := range row {
				sum += v
				sumSq += v * v
				count++
			}
		}
	}
	mean = sum / count
	variance := sumSq/count - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// TestPropertyWeightedTrainStats cross-checks the O(entries) weighted
// statistics against the naive materialize-all-windows computation on small
// random tensors, including the constant-signal (std == 0) edge case.
func TestPropertyWeightedTrainStats(t *testing.T) {
	f := func(seed uint64, entriesRaw, nodesRaw, hRaw uint8) bool {
		entries := int(entriesRaw%57) + 8 // 8..64
		nodes := int(nodesRaw%4) + 1
		horizon := int(hRaw)%3 + 1
		s := entries - (2*horizon - 1)
		if s <= 0 {
			return true
		}
		trainS := s * 7 / 10
		if trainS < 1 {
			trainS = 1
		}
		data := signal(seed, entries, nodes, 2)
		mean, std := weightedTrainStats(data, horizon, trainS)
		wantMean, wantStd := naiveTrainStats(data, horizon, trainS)
		return math.Abs(mean-wantMean) < 1e-9 && math.Abs(std-wantStd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}

	// Constant signal: zero variance, and NewIndexDataset guards the
	// divide-by-zero by standardizing with std 1.
	data := tensor.Ones(20, 3, 2)
	data.ApplyInPlace(func(float64) float64 { return 4.25 })
	mean, std := weightedTrainStats(data, 3, 10)
	if mean != 4.25 || std != 0 {
		t.Fatalf("constant signal stats (%v, %v), want (4.25, 0)", mean, std)
	}
	idx, err := NewIndexDataset(data, 3, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Std != 1 {
		t.Fatalf("constant-signal dataset must fall back to std 1, got %v", idx.Std)
	}
	x, _ := idx.Snapshot(0)
	if x.At(0, 0, 0) != 0 {
		t.Fatalf("constant signal must standardize to zero, got %v", x.At(0, 0, 0))
	}
}
