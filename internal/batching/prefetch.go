package batching

import (
	"sync"

	"pgti/internal/tensor"
)

// prefetched is one collated batch handed from the assembly goroutine to the
// training loop.
type prefetched struct {
	x, y *tensor.Tensor
}

// Prefetcher pipelines AssembleBatch against the training step: a single
// goroutine collates batch T+1 on the parallel pool while the consumer runs
// forward/backward on batch T. The pipeline is exactly one batch deep — the
// producer hands batches over an unbuffered channel, so it is never more
// than one assembled batch ahead of the consumer.
//
// Storage is double-buffered: batch i lands in an internal slot i%2, and the
// one-deep handoff guarantees the producer only starts overwriting a slot
// after the consumer has moved on to the *other* slot's batch. The tensors
// returned by Next are views into those slots and stay valid until the next
// Next (or Close) call; batch contents are bitwise identical to a serial
// AssembleBatch of the same indices — the pipeline changes timing, not bits.
//
// The producer goroutine does pure-local compute only (index-gather on the
// process-wide worker pool). It must never touch cluster collectives: those
// are bound to the rank goroutine that owns the Worker.
type Prefetcher struct {
	ch   chan prefetched
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewPrefetcher starts assembling the given batch schedule from data.
// Callers must Close the prefetcher on every exit path (including
// cancellation mid-epoch) to reclaim the goroutine.
func NewPrefetcher(data *IndexDataset, batches [][]int) *Prefetcher {
	p := &Prefetcher{
		ch:   make(chan prefetched),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		defer close(p.ch)
		var bufs [2]BatchBuffer
		for i, indices := range batches {
			x, y := data.AssembleBatch(indices, &bufs[i%2])
			select {
			case p.ch <- prefetched{x: x, y: y}:
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Next blocks for the next assembled batch. ok is false once the schedule is
// exhausted (or the prefetcher was closed). The returned tensors alias the
// prefetcher's internal double buffer: they are valid until the next call to
// Next or Close.
func (p *Prefetcher) Next() (x, y *tensor.Tensor, ok bool) {
	b, ok := <-p.ch
	return b.x, b.y, ok
}

// Close stops the assembly goroutine and waits for it to exit. Idempotent
// and safe to call at any point of the schedule — mid-epoch cancellation
// drains cleanly.
func (p *Prefetcher) Close() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
