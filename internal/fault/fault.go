// Package fault models deterministic infrastructure faults for the virtual
// cluster: worker crashes, degraded links, and stragglers, scheduled on the
// modeled clock. A Plan is a pure function of its seed and options — the same
// seed always produces the same schedule — so every worker in a grid can hold
// an identical copy and agree, without any out-of-band channel, on exactly
// which fault fires when. Nothing here touches wall time: faults are points
// and windows in virtual time, and the cluster layer charges their effects
// (detection timeouts, inflated transfer and compute costs) to the same
// clocks everything else in this repo is priced on.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// WorkerCrash removes a rank from the grid: once any surviving worker's
// virtual clock reaches At, the loss is detected (after the plan's modeled
// detection timeout) and surfaced as a *cluster.WorkerLostError. Ranks are
// numbered in the grid the plan is armed on; after an elastic recovery the
// engine remaps the remaining schedule onto the survivor grid.
type WorkerCrash struct {
	Rank int
	At   time.Duration
}

// LinkDegrade inflates every modeled transfer cost by Factor for virtual
// times in [From, To). Factor 1 is a no-op; factors below 1 are invalid (a
// degraded link never gets faster).
type LinkDegrade struct {
	Factor   float64
	From, To time.Duration
}

// Straggler inflates one rank's modeled compute charges by Factor for
// virtual times in [From, To). Like LinkDegrade, Factor must be >= 1.
type Straggler struct {
	Rank     int
	Factor   float64
	From, To time.Duration
}

// DefaultDetection is the modeled failure-detection timeout charged to every
// surviving clock when a crash is detected, unless the plan overrides it.
const DefaultDetection = 250 * time.Millisecond

// DefaultHorizon bounds the virtual-time range the seeded random generators
// draw fault times from.
const DefaultHorizon = time.Second

// Plan is a deterministic fault schedule. Construct it with New; the zero
// value is an empty plan that injects nothing. An armed-but-empty plan is
// contractually indistinguishable from no plan at all (bitwise identical
// curves and clocks) — the cluster layer guards every scaling site on the
// no-fault fast path.
type Plan struct {
	// Seed identifies the schedule; it drives the RNG behind the Random*
	// options and is carried through Shift/Remap so recovery events can
	// name the plan they came from.
	Seed uint64
	// Detection is the modeled failure-detection timeout.
	Detection time.Duration
	// Horizon bounds randomly drawn fault times.
	Horizon time.Duration

	Crashes    []WorkerCrash
	Degrades   []LinkDegrade
	Stragglers []Straggler

	rng *rand.Rand
}

// Option mutates a Plan under construction.
type Option func(*Plan)

// Crash schedules a deterministic worker crash.
func Crash(rank int, at time.Duration) Option {
	return func(p *Plan) {
		p.Crashes = append(p.Crashes, WorkerCrash{Rank: rank, At: at})
	}
}

// Degrade schedules a link-degradation window scaling transfer costs.
func Degrade(factor float64, from, to time.Duration) Option {
	return func(p *Plan) {
		p.Degrades = append(p.Degrades, LinkDegrade{Factor: factor, From: from, To: to})
	}
}

// Slow schedules a straggler window scaling one rank's compute charges.
func Slow(rank int, factor float64, from, to time.Duration) Option {
	return func(p *Plan) {
		p.Stragglers = append(p.Stragglers, Straggler{Rank: rank, Factor: factor, From: from, To: to})
	}
}

// Detection overrides the modeled failure-detection timeout.
func Detection(d time.Duration) Option {
	return func(p *Plan) { p.Detection = d }
}

// Horizon overrides the virtual-time range random faults are drawn from.
// It must precede the Random* options it should govern.
func Horizon(d time.Duration) Option {
	return func(p *Plan) { p.Horizon = d }
}

// RandomCrashes draws n crashes with distinct ranks in [0, world) and times
// in [0, Horizon) from the plan's seeded RNG.
func RandomCrashes(n, world int) Option {
	return func(p *Plan) {
		perm := p.rng.Perm(world)
		for i := 0; i < n && i < world; i++ {
			at := time.Duration(p.rng.Int63n(int64(p.Horizon)))
			p.Crashes = append(p.Crashes, WorkerCrash{Rank: perm[i], At: at})
		}
	}
}

// RandomStragglers draws n straggler windows of the given factor and
// duration, with ranks in [0, world) and starts in [0, Horizon), from the
// plan's seeded RNG.
func RandomStragglers(n, world int, factor float64, dur time.Duration) Option {
	return func(p *Plan) {
		for i := 0; i < n; i++ {
			rank := p.rng.Intn(world)
			from := time.Duration(p.rng.Int63n(int64(p.Horizon)))
			p.Stragglers = append(p.Stragglers, Straggler{Rank: rank, Factor: factor, From: from, To: from + dur})
		}
	}
}

// New builds a Plan from the seed and options. Options apply in order and
// the schedule is then canonicalized (crashes sorted by (At, Rank), windows
// by (From, To, Rank)), so the result is a pure function of the arguments.
func New(seed uint64, opts ...Option) *Plan {
	p := &Plan{
		Seed:      seed,
		Detection: DefaultDetection,
		Horizon:   DefaultHorizon,
		rng:       rand.New(rand.NewSource(int64(seed))),
	}
	for _, opt := range opts {
		opt(p)
	}
	p.normalize()
	return p
}

// normalize puts the schedule in canonical order so plans built from the
// same faults compare and replay identically.
func (p *Plan) normalize() {
	sort.Slice(p.Crashes, func(i, j int) bool {
		a, b := p.Crashes[i], p.Crashes[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Rank < b.Rank
	})
	sort.Slice(p.Degrades, func(i, j int) bool {
		a, b := p.Degrades[i], p.Degrades[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	sort.Slice(p.Stragglers, func(i, j int) bool {
		a, b := p.Stragglers[i], p.Stragglers[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Rank < b.Rank
	})
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Degrades) == 0 && len(p.Stragglers) == 0)
}

// Validate checks the schedule against a grid of `world` ranks: every rank
// in range, at most one crash per rank, at least one survivor, factors >= 1,
// and well-ordered windows. A nil plan is valid.
func (p *Plan) Validate(world int) error {
	if p == nil {
		return nil
	}
	if world < 1 {
		return fmt.Errorf("fault: world size %d", world)
	}
	if p.Detection <= 0 {
		return fmt.Errorf("fault: detection timeout %v must be positive", p.Detection)
	}
	seen := make(map[int]bool, len(p.Crashes))
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= world {
			return fmt.Errorf("fault: crash rank %d outside world %d", c.Rank, world)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash at negative time %v", c.At)
		}
		if seen[c.Rank] {
			return fmt.Errorf("fault: rank %d crashes twice", c.Rank)
		}
		seen[c.Rank] = true
	}
	if len(p.Crashes) >= world {
		return fmt.Errorf("fault: %d crashes leave no survivor in world %d", len(p.Crashes), world)
	}
	for _, d := range p.Degrades {
		if d.Factor < 1 {
			return fmt.Errorf("fault: degrade factor %v below 1", d.Factor)
		}
		if d.From < 0 || d.To <= d.From {
			return fmt.Errorf("fault: degrade window [%v, %v) is empty or negative", d.From, d.To)
		}
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 || s.Rank >= world {
			return fmt.Errorf("fault: straggler rank %d outside world %d", s.Rank, world)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: straggler factor %v below 1", s.Factor)
		}
		if s.From < 0 || s.To <= s.From {
			return fmt.Errorf("fault: straggler window [%v, %v) is empty or negative", s.From, s.To)
		}
	}
	return nil
}

// NextCrash returns the earliest scheduled crash by (At, Rank) order.
func (p *Plan) NextCrash() (WorkerCrash, bool) {
	if p == nil || len(p.Crashes) == 0 {
		return WorkerCrash{}, false
	}
	return p.Crashes[0], true
}

// DegradeFactor returns the transfer-cost multiplier at virtual time vt: the
// largest factor among active windows, 1 when none is active.
func (p *Plan) DegradeFactor(vt time.Duration) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, d := range p.Degrades {
		if vt >= d.From && vt < d.To && d.Factor > f {
			f = d.Factor
		}
	}
	return f
}

// StragglerFactor returns rank's compute-cost multiplier at virtual time vt:
// the largest factor among its active windows, 1 when none is active.
func (p *Plan) StragglerFactor(rank int, vt time.Duration) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Rank == rank && vt >= s.From && vt < s.To && s.Factor > f {
			f = s.Factor
		}
	}
	return f
}

// Shift rebases the schedule onto a clock that starts `offset` into this
// plan's timeline: times shift down by offset (clamped at zero — a fault
// already due fires immediately), and windows entirely in the past drop out.
// The receiver is untouched.
func (p *Plan) Shift(offset time.Duration) *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{Seed: p.Seed, Detection: p.Detection, Horizon: p.Horizon}
	for _, c := range p.Crashes {
		c.At = clampZero(c.At - offset)
		q.Crashes = append(q.Crashes, c)
	}
	for _, d := range p.Degrades {
		if d.To <= offset {
			continue
		}
		d.From = clampZero(d.From - offset)
		d.To -= offset
		q.Degrades = append(q.Degrades, d)
	}
	for _, s := range p.Stragglers {
		if s.To <= offset {
			continue
		}
		s.From = clampZero(s.From - offset)
		s.To -= offset
		q.Stragglers = append(q.Stragglers, s)
	}
	q.normalize()
	return q
}

// Remap renumbers ranks through the given old→new mapping, dropping faults
// whose rank is absent (a crashed rank's remaining schedule dies with it).
// Rank-agnostic windows (LinkDegrade) survive untouched. The receiver is
// untouched.
func (p *Plan) Remap(ranks map[int]int) *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{Seed: p.Seed, Detection: p.Detection, Horizon: p.Horizon}
	for _, c := range p.Crashes {
		if nr, ok := ranks[c.Rank]; ok {
			c.Rank = nr
			q.Crashes = append(q.Crashes, c)
		}
	}
	q.Degrades = append(q.Degrades, p.Degrades...)
	for _, s := range p.Stragglers {
		if nr, ok := ranks[s.Rank]; ok {
			s.Rank = nr
			q.Stragglers = append(q.Stragglers, s)
		}
	}
	q.normalize()
	return q
}

func clampZero(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}
