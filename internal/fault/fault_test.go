package fault

import (
	"reflect"
	"testing"
	"time"
)

const ms = time.Millisecond

func TestNewCanonicalizesSchedule(t *testing.T) {
	p := New(1,
		Crash(3, 20*ms),
		Crash(1, 5*ms),
		Crash(2, 20*ms),
		Degrade(2, 30*ms, 40*ms),
		Degrade(3, 10*ms, 50*ms),
		Slow(1, 2, 10*ms, 20*ms),
		Slow(0, 2, 10*ms, 20*ms),
	)
	wantCrashes := []WorkerCrash{{Rank: 1, At: 5 * ms}, {Rank: 2, At: 20 * ms}, {Rank: 3, At: 20 * ms}}
	if !reflect.DeepEqual(p.Crashes, wantCrashes) {
		t.Fatalf("crashes = %v, want %v", p.Crashes, wantCrashes)
	}
	if p.Degrades[0].From != 10*ms {
		t.Fatalf("degrades not sorted by From: %v", p.Degrades)
	}
	if p.Stragglers[0].Rank != 0 {
		t.Fatalf("equal-window stragglers not sorted by rank: %v", p.Stragglers)
	}
	if p.Detection != DefaultDetection || p.Horizon != DefaultHorizon {
		t.Fatalf("defaults not applied: detection %v horizon %v", p.Detection, p.Horizon)
	}
}

func TestRandomOptionsAreSeedDeterministic(t *testing.T) {
	build := func(seed uint64) *Plan {
		return New(seed,
			Horizon(100*ms),
			RandomCrashes(2, 8),
			RandomStragglers(2, 8, 3, 10*ms))
	}
	a, b := build(7), build(7)
	a.rng, b.rng = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := build(8)
	c.rng = nil
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	ranks := map[int]bool{}
	for _, cr := range a.Crashes {
		if cr.Rank < 0 || cr.Rank >= 8 {
			t.Fatalf("random crash rank %d outside world", cr.Rank)
		}
		if cr.At < 0 || cr.At >= 100*ms {
			t.Fatalf("random crash time %v outside horizon", cr.At)
		}
		if ranks[cr.Rank] {
			t.Fatalf("random crashes repeat rank %d", cr.Rank)
		}
		ranks[cr.Rank] = true
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if !New(1).Empty() {
		t.Fatal("optionless plan should be empty")
	}
	if New(1, Crash(0, ms)).Empty() {
		t.Fatal("plan with a crash should not be empty")
	}
	if New(1, Degrade(2, 0, ms)).Empty() {
		t.Fatal("plan with a degrade window should not be empty")
	}
}

func TestValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	good := New(1, Crash(1, 5*ms), Slow(0, 2, 0, 10*ms), Degrade(1.5, 0, 10*ms))
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan: %v", err)
	}
	bad := []*Plan{
		New(1, Crash(4, ms)),                 // rank outside world
		New(1, Crash(-1, ms)),                // negative rank
		New(1, Crash(0, -ms)),                // negative time
		New(1, Crash(0, ms), Crash(0, 2*ms)), // same rank twice
		New(1, Crash(0, ms), Crash(1, ms), Crash(2, ms), Crash(3, ms)), // no survivor
		New(1, Degrade(0.5, 0, ms)),                                    // factor below 1
		New(1, Degrade(2, 5*ms, 5*ms)),                                 // empty window
		New(1, Slow(4, 2, 0, ms)),                                      // straggler rank outside world
		New(1, Slow(0, 0.5, 0, ms)),                                    // straggler factor below 1
		New(1, Slow(0, 2, 5*ms, 2*ms)),                                 // inverted window
		New(1, Detection(0)),                                           // non-positive detection
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	if err := good.Validate(0); err == nil {
		t.Error("world 0 validated")
	}
}

func TestNextCrash(t *testing.T) {
	var nilPlan *Plan
	if _, ok := nilPlan.NextCrash(); ok {
		t.Fatal("nil plan reported a crash")
	}
	if _, ok := New(1).NextCrash(); ok {
		t.Fatal("empty plan reported a crash")
	}
	p := New(1, Crash(2, 20*ms), Crash(1, 5*ms))
	c, ok := p.NextCrash()
	if !ok || c.Rank != 1 || c.At != 5*ms {
		t.Fatalf("NextCrash = %+v, %v; want rank 1 at 5ms", c, ok)
	}
}

func TestDegradeFactorTakesMaxOfActiveWindows(t *testing.T) {
	var nilPlan *Plan
	if f := nilPlan.DegradeFactor(0); f != 1 {
		t.Fatalf("nil plan factor %v", f)
	}
	p := New(1, Degrade(2, 0, 20*ms), Degrade(3, 10*ms, 30*ms))
	cases := []struct {
		vt   time.Duration
		want float64
	}{
		{0, 2}, {10 * ms, 3}, {15 * ms, 3}, {20 * ms, 3}, {30 * ms, 1},
	}
	for _, c := range cases {
		if f := p.DegradeFactor(c.vt); f != c.want {
			t.Errorf("DegradeFactor(%v) = %v, want %v", c.vt, f, c.want)
		}
	}
}

func TestStragglerFactorIsPerRank(t *testing.T) {
	var nilPlan *Plan
	if f := nilPlan.StragglerFactor(0, 0); f != 1 {
		t.Fatalf("nil plan factor %v", f)
	}
	p := New(1, Slow(1, 2, 0, 20*ms), Slow(1, 4, 10*ms, 15*ms))
	if f := p.StragglerFactor(0, 5*ms); f != 1 {
		t.Errorf("other rank scaled: %v", f)
	}
	if f := p.StragglerFactor(1, 5*ms); f != 2 {
		t.Errorf("single window factor %v, want 2", f)
	}
	if f := p.StragglerFactor(1, 12*ms); f != 4 {
		t.Errorf("overlap should take max: %v, want 4", f)
	}
	if f := p.StragglerFactor(1, 20*ms); f != 1 {
		t.Errorf("window end is exclusive: %v", f)
	}
}

func TestShiftRebasesAndDropsPastWindows(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Shift(ms) != nil {
		t.Fatal("nil plan shift should stay nil")
	}
	p := New(9, Detection(50*ms),
		Crash(0, 5*ms), Crash(1, 30*ms),
		Degrade(2, 0, 8*ms), Degrade(3, 5*ms, 25*ms),
		Slow(2, 2, 0, 10*ms), Slow(3, 2, 15*ms, 40*ms))
	q := p.Shift(10 * ms)
	if q.Seed != 9 || q.Detection != 50*ms {
		t.Fatalf("seed/detection not carried: %+v", q)
	}
	wantCrashes := []WorkerCrash{{Rank: 0, At: 0}, {Rank: 1, At: 20 * ms}}
	if !reflect.DeepEqual(q.Crashes, wantCrashes) {
		t.Fatalf("shifted crashes = %v, want %v", q.Crashes, wantCrashes)
	}
	if len(q.Degrades) != 1 || q.Degrades[0].From != 0 || q.Degrades[0].To != 15*ms {
		t.Fatalf("past degrade window not dropped or live one misclamped: %v", q.Degrades)
	}
	if len(q.Stragglers) != 1 || q.Stragglers[0].Rank != 3 || q.Stragglers[0].From != 5*ms {
		t.Fatalf("shifted stragglers = %v", q.Stragglers)
	}
	if len(p.Crashes) != 2 || p.Crashes[0].At != 5*ms {
		t.Fatal("Shift mutated the receiver")
	}
}

func TestRemapRenumbersAndDropsAbsentRanks(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Remap(map[int]int{0: 0}) != nil {
		t.Fatal("nil plan remap should stay nil")
	}
	p := New(9,
		Crash(1, 5*ms), Crash(3, 30*ms),
		Degrade(2, 0, 10*ms),
		Slow(1, 2, 0, 10*ms), Slow(2, 3, 0, 10*ms))
	// Rank 1 died: survivors 0,2,3 renumber to 0,1,2.
	q := p.Remap(map[int]int{0: 0, 2: 1, 3: 2})
	if len(q.Crashes) != 1 || q.Crashes[0].Rank != 2 || q.Crashes[0].At != 30*ms {
		t.Fatalf("remapped crashes = %v", q.Crashes)
	}
	if len(q.Degrades) != 1 {
		t.Fatalf("rank-agnostic degrade dropped: %v", q.Degrades)
	}
	if len(q.Stragglers) != 1 || q.Stragglers[0].Rank != 1 || q.Stragglers[0].Factor != 3 {
		t.Fatalf("remapped stragglers = %v", q.Stragglers)
	}
	if len(p.Crashes) != 2 || p.Crashes[0].Rank != 1 {
		t.Fatal("Remap mutated the receiver")
	}
}
