package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"pgti/internal/tensor"
)

// signalMagic identifies the binary signal file format.
const signalMagic = uint32(0x50475449) // "PGTI"

// SaveSignal writes a rank-3 signal tensor [entries, nodes, features] to a
// simple little-endian binary format (magic, dims, float64 payload).
func SaveSignal(path string, data *tensor.Tensor) error {
	if data.Rank() != 3 {
		return fmt.Errorf("dataset: SaveSignal expects rank 3, got %v", data.Shape())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	header := []uint64{uint64(signalMagic), uint64(data.Dim(0)), uint64(data.Dim(1)), uint64(data.Dim(2))}
	for _, h := range header {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, v := range data.Contiguous().Data() {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// LoadSignal reads a tensor written by SaveSignal.
func LoadSignal(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var header [4]uint64
	for i := range header {
		if err := binary.Read(r, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("dataset: reading header: %w", err)
		}
	}
	if uint32(header[0]) != signalMagic {
		return nil, fmt.Errorf("dataset: %s is not a PGTI signal file", path)
	}
	e, n, feats := int(header[1]), int(header[2]), int(header[3])
	if e < 0 || n < 0 || feats < 0 || int64(e)*int64(n)*int64(feats) > MaxGenerateElements*4 {
		return nil, fmt.Errorf("dataset: implausible dims %dx%dx%d in %s", e, n, feats, path)
	}
	total := e * n * feats
	vals := make([]float64, total)
	buf := make([]byte, 8)
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated payload at element %d: %w", i, err)
		}
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return tensor.FromSlice(vals, e, n, feats), nil
}
