package dataset

import (
	"fmt"

	"pgti/internal/graph"
	"pgti/internal/sparse"
	"pgti/internal/tensor"
)

// DynamicDataset is a *dynamic graph with temporal signal* — the data
// structure the paper lists as future work (§7): node features evolve as in
// the static case, and the topology itself changes over time (road
// closures, seasonal links). The graph is piecewise-constant with period
// GraphPeriod: entry t uses Graphs[t / GraphPeriod].
type DynamicDataset struct {
	Meta        Meta
	Data        *tensor.Tensor
	Graphs      []*graph.Graph
	GraphPeriod int

	// supports caches the per-graph transition-matrix pairs.
	supports [][]*sparse.CSR
}

// GenerateDynamic synthesizes a dynamic dataset: the base sensor network is
// re-wired every graphPeriod entries by perturbing rewireFrac of the edge
// weights (modeling incidents/closures), and the signal is generated with
// the same domain process as Generate.
func GenerateDynamic(meta Meta, seed uint64, graphPeriod int, rewireFrac float64) (*DynamicDataset, error) {
	if graphPeriod < 1 {
		return nil, fmt.Errorf("dataset: graph period must be >= 1, got %d", graphPeriod)
	}
	if rewireFrac < 0 || rewireFrac > 1 {
		return nil, fmt.Errorf("dataset: rewire fraction %f out of [0,1]", rewireFrac)
	}
	base, err := Generate(meta, seed)
	if err != nil {
		return nil, err
	}
	numGraphs := (meta.Entries + graphPeriod - 1) / graphPeriod
	graphs := make([]*graph.Graph, numGraphs)
	graphs[0] = base.Graph
	rng := tensor.NewRNG(seed ^ 0xd15ea5e)
	for i := 1; i < numGraphs; i++ {
		graphs[i] = rewire(graphs[i-1], rng, rewireFrac)
	}
	d := &DynamicDataset{
		Meta:        meta,
		Data:        base.Data,
		Graphs:      graphs,
		GraphPeriod: graphPeriod,
	}
	d.supports = make([][]*sparse.CSR, numGraphs)
	return d, nil
}

// rewire perturbs a fraction of the graph's edge weights (keeping the
// structure sparse and weights in (0, 1]); self-loops are preserved.
func rewire(g *graph.Graph, rng *tensor.RNG, frac float64) *graph.Graph {
	adj := g.Adj.Clone()
	for i := range adj.Val {
		if rng.Float64() < frac {
			// Scale the edge: closures weaken it, recoveries restore it.
			adj.Val[i] *= 0.3 + 0.9*rng.Float64()
			if adj.Val[i] > 1 {
				adj.Val[i] = 1
			}
		}
	}
	out, err := graph.NewFromAdjacency(adj)
	if err != nil {
		// Clone of a valid square adjacency cannot fail.
		panic(err)
	}
	return out
}

// GraphAt returns the topology in effect at entry t.
func (d *DynamicDataset) GraphAt(t int) *graph.Graph {
	if t < 0 || t >= d.Meta.Entries {
		panic(fmt.Sprintf("dataset: entry %d out of range [0,%d)", t, d.Meta.Entries))
	}
	return d.Graphs[t/d.GraphPeriod]
}

// SupportsAt returns the cached forward/backward transition matrices for
// the topology at entry t.
func (d *DynamicDataset) SupportsAt(t int) []*sparse.CSR {
	idx := t / d.GraphPeriod
	if t < 0 || idx >= len(d.Graphs) {
		panic(fmt.Sprintf("dataset: entry %d out of range", t))
	}
	if d.supports[idx] == nil {
		fwd, bwd := d.Graphs[idx].TransitionMatrices()
		d.supports[idx] = []*sparse.CSR{fwd, bwd}
	}
	return d.supports[idx]
}

// SupportsForWindow returns the per-step support sets for a window starting
// at data row `start` with the given length — the input
// PGTDCRNN.ForwardDynamic consumes. This is index-batching extended to
// dynamic graphs: the graph sequence, like the signal, is reconstructed
// from indices at runtime rather than materialized per snapshot.
func (d *DynamicDataset) SupportsForWindow(start, length int) [][]*sparse.CSR {
	out := make([][]*sparse.CSR, length)
	for i := 0; i < length; i++ {
		out[i] = d.SupportsAt(start + i)
	}
	return out
}

// NumGraphBytes returns the total CSR footprint of all graph snapshots —
// the (small) price of topology dynamism.
func (d *DynamicDataset) NumGraphBytes() int64 {
	var total int64
	for _, g := range d.Graphs {
		total += g.Adj.NumBytes()
	}
	return total
}

// InjectMissing simulates sensor dropouts: each (entry, node) observation
// is zeroed with probability frac (zero is the missing-data sentinel of
// the traffic benchmarks, paired with metrics.MaskedMAE). Returns the
// number of zeroed observations. The tensor is modified in place.
func InjectMissing(data *tensor.Tensor, frac float64, seed uint64) int {
	if data.Rank() != 3 {
		panic(fmt.Sprintf("dataset: InjectMissing expects rank 3, got %v", data.Shape()))
	}
	if frac <= 0 {
		return 0
	}
	rng := tensor.NewRNG(seed)
	entries, nodes, feats := data.Dim(0), data.Dim(1), data.Dim(2)
	dropped := 0
	for t := 0; t < entries; t++ {
		for n := 0; n < nodes; n++ {
			if rng.Float64() < frac {
				for f := 0; f < feats; f++ {
					data.Set(0, t, n, f)
				}
				dropped++
			}
		}
	}
	return dropped
}
