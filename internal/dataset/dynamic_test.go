package dataset

import (
	"testing"

	"pgti/internal/tensor"
)

func TestGenerateDynamicValidation(t *testing.T) {
	meta := PeMSBay.Scaled(0.02)
	if _, err := GenerateDynamic(meta, 1, 0, 0.1); err == nil {
		t.Fatal("expected error for zero period")
	}
	if _, err := GenerateDynamic(meta, 1, 100, 1.5); err == nil {
		t.Fatal("expected error for bad rewire fraction")
	}
}

func TestGenerateDynamicGraphSchedule(t *testing.T) {
	meta := PeMSBay.Scaled(0.02)
	d, err := GenerateDynamic(meta, 3, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	wantGraphs := (meta.Entries + 99) / 100
	if len(d.Graphs) != wantGraphs {
		t.Fatalf("graphs %d want %d", len(d.Graphs), wantGraphs)
	}
	// Piecewise-constant mapping.
	if d.GraphAt(0) != d.Graphs[0] || d.GraphAt(99) != d.Graphs[0] || d.GraphAt(100) != d.Graphs[1] {
		t.Fatal("GraphAt mapping wrong")
	}
	// Topology actually changes across periods…
	if d.Graphs[0].Adj.ToDense().Equal(d.Graphs[1].Adj.ToDense()) {
		t.Fatal("rewiring must change edge weights")
	}
	// …but sparsity structure is preserved (weights perturbed, not edges
	// added/removed) and self-loops survive.
	if d.Graphs[0].Adj.NNZ() != d.Graphs[1].Adj.NNZ() {
		t.Fatal("rewiring must preserve the edge set")
	}
}

func TestDynamicSupportsCachedAndWindowed(t *testing.T) {
	meta := PeMSBay.Scaled(0.02)
	d, err := GenerateDynamic(meta, 4, 50, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s1 := d.SupportsAt(10)
	s2 := d.SupportsAt(20)
	if s1[0] != s2[0] {
		t.Fatal("same-period supports must be cached and shared")
	}
	win := d.SupportsForWindow(45, 12)
	if len(win) != 12 {
		t.Fatalf("window length %d", len(win))
	}
	// The window spans the period boundary at 50: supports change inside it.
	if win[0][0] == win[11][0] {
		t.Fatal("window crossing a period boundary must see two topologies")
	}
	if d.NumGraphBytes() <= 0 {
		t.Fatal("graph bytes accounting missing")
	}
}

func TestDynamicWithSinglePeriodMatchesStatic(t *testing.T) {
	meta := PeMSBay.Scaled(0.02)
	d, err := GenerateDynamic(meta, 5, meta.Entries, 0.5) // one period = static
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Graphs) != 1 {
		t.Fatalf("expected a single graph, got %d", len(d.Graphs))
	}
	static, err := Generate(meta, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Data.Equal(static.Data) {
		t.Fatal("dynamic generation must reuse the static signal process")
	}
	if !d.Graphs[0].Adj.ToDense().Equal(static.Graph.Adj.ToDense()) {
		t.Fatal("first graph must be the base topology")
	}
}

func TestInjectMissing(t *testing.T) {
	data := tensor.Ones(100, 10, 2)
	dropped := InjectMissing(data, 0.3, 7)
	if dropped < 200 || dropped > 400 {
		t.Fatalf("dropped %d of 1000, expected ~300", dropped)
	}
	// Every drop zeroes all features of the observation.
	zeros := 0
	for tt := 0; tt < 100; tt++ {
		for n := 0; n < 10; n++ {
			a, b := data.At(tt, n, 0), data.At(tt, n, 1)
			if (a == 0) != (b == 0) {
				t.Fatal("features must be dropped together")
			}
			if a == 0 {
				zeros++
			}
		}
	}
	if zeros != dropped {
		t.Fatalf("zeros %d != dropped %d", zeros, dropped)
	}
	// frac 0 is a no-op; deterministic per seed.
	if InjectMissing(data, 0, 7) != 0 {
		t.Fatal("frac 0 must drop nothing")
	}
	d2 := tensor.Ones(100, 10, 2)
	if InjectMissing(d2, 0.3, 7) != dropped {
		t.Fatal("injection must be deterministic per seed")
	}
}
