package dataset

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"pgti/internal/tensor"
)

// TestTable1ByteCounts verifies the analytic formulas against the paper's
// Table 1 (binary-prefix column values; the paper mixes decimal/binary
// units, so we verify against the exact byte products).
func TestTable1ByteCounts(t *testing.T) {
	cases := []struct {
		meta       Meta
		raw, after int64
	}{
		{ChickenpoxHungary, 522 * 20 * 8, 2 * (522 - 7) * 4 * 20 * 8},
		{WindmillLarge, 17472 * 319 * 8, 2 * (17472 - 15) * 8 * 319 * 8},
		{MetrLA, 34272 * 207 * 8, 2 * (34272 - 23) * 12 * 207 * 2 * 8},
		{PeMSBay, 52105 * 325 * 8, 2 * (52105 - 23) * 12 * 325 * 2 * 8},
		{PeMSAllLA, 105120 * 2716 * 8, 2 * (105120 - 23) * 12 * 2716 * 2 * 8},
		{PeMS, 105120 * 11160 * 8, 2 * (105120 - 23) * 12 * 11160 * 2 * 8},
	}
	for _, c := range cases {
		if got := c.meta.RawBytes(); got != c.raw {
			t.Fatalf("%s RawBytes %d want %d", c.meta.Name, got, c.raw)
		}
		if got := c.meta.StandardBytes(); got != c.after {
			t.Fatalf("%s StandardBytes %d want %d", c.meta.Name, got, c.after)
		}
	}
	// Spot-check the headline magnitudes in GiB against the paper.
	gib := func(b int64) float64 { return float64(b) / (1 << 30) }
	if g := gib(PeMS.StandardBytes()); math.Abs(g-419.44) > 0.5 {
		t.Fatalf("PeMS after-preprocessing %f GiB, paper reports 419.46 GB", g)
	}
	if g := gib(PeMSAllLA.StandardBytes()); math.Abs(g-102.08) > 0.5 {
		t.Fatalf("PeMS-All-LA after-preprocessing %f GiB, paper reports 102.08 GB", g)
	}
	if g := gib(PeMS.RawBytes()); math.Abs(g-8.74) > 0.2 {
		t.Fatalf("PeMS raw %f GiB, paper reports 8.71 GB", g)
	}
}

func TestIndexBytesFormula(t *testing.T) {
	m := PeMSBay
	want := int64(52105)*325*2*8 + int64(52105-23)*8
	if got := m.IndexBytes(); got != want {
		t.Fatalf("IndexBytes %d want %d", got, want)
	}
	// Index footprint must be dramatically smaller: eq1/eq2 ~ 2*horizon.
	ratio := float64(m.StandardBytes()) / float64(m.IndexBytes())
	if ratio < 20 || ratio > 25 {
		t.Fatalf("eq1/eq2 ratio %f, expected ~2*horizon (24)", ratio)
	}
}

func TestGrowthFactor(t *testing.T) {
	// Growth factor approaches 2*horizon for long series.
	if gf := PeMS.GrowthFactor(); math.Abs(gf-24) > 0.1 {
		t.Fatalf("PeMS growth factor %f want ~24", gf)
	}
	if gf := ChickenpoxHungary.GrowthFactor(); math.Abs(gf-8*float64(515)/522) > 0.2 {
		t.Fatalf("Chickenpox growth factor %f", gf)
	}
}

func TestSnapshots(t *testing.T) {
	if s := PeMSBay.Snapshots(); s != 52105-23 {
		t.Fatalf("Snapshots %d", s)
	}
	tiny := Meta{Entries: 3, Horizon: 12}
	if tiny.Snapshots() != 0 {
		t.Fatal("too-short series must have zero snapshots")
	}
}

func TestScaled(t *testing.T) {
	s := PeMSBay.Scaled(0.1)
	if s.Nodes != 32 || s.Entries != 5210 {
		t.Fatalf("scaled dims %dx%d", s.Entries, s.Nodes)
	}
	if s.Horizon != PeMSBay.Horizon || !s.TimeOfDay {
		t.Fatal("scaling must preserve preprocessing parameters")
	}
	// Degenerate factors are ignored.
	if same := PeMSBay.Scaled(0); same.Nodes != PeMSBay.Nodes {
		t.Fatal("factor 0 must be a no-op")
	}
	// Entries floor keeps at least one snapshot.
	micro := PeMSBay.Scaled(0.00001)
	if micro.Snapshots() < 1 {
		t.Fatalf("scaled dataset must keep >= 1 snapshot, got %d", micro.Snapshots())
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("PeMS-BAY")
	if err != nil || m.Nodes != 325 {
		t.Fatalf("ByName: %v %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if len(All()) != 6 {
		t.Fatalf("All() returned %d datasets", len(All()))
	}
}

func TestGenerateTrafficShapeAndRealism(t *testing.T) {
	meta := PeMSBay.Scaled(0.02) // 6 nodes x 1042 entries
	ds, err := Generate(meta, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Data.Dim(0) != meta.Entries || ds.Data.Dim(1) != meta.Nodes || ds.Data.Dim(2) != 1 {
		t.Fatalf("shape %v", ds.Data.Shape())
	}
	// Speeds in a plausible band.
	if ds.Data.MinAll() < 0 || ds.Data.MaxAll() > 90 {
		t.Fatalf("speeds out of range: [%f, %f]", ds.Data.MinAll(), ds.Data.MaxAll())
	}
	// Rush hour must slow traffic: compare mean speed at 8am vs 3am.
	period := meta.PeriodSteps
	var rush, night float64
	var rc, nc int
	for tt := 0; tt < meta.Entries; tt++ {
		tod := float64(tt%period) / float64(period)
		m := ds.Data.Index(0, tt).MeanAll()
		if tod > 0.30 && tod < 0.36 {
			rush += m
			rc++
		}
		if tod > 0.08 && tod < 0.14 {
			night += m
			nc++
		}
	}
	if rc == 0 || nc == 0 {
		t.Fatal("no samples in rush/night windows")
	}
	if rush/float64(rc) >= night/float64(nc) {
		t.Fatalf("rush-hour speeds (%f) must be below night speeds (%f)", rush/float64(rc), night/float64(nc))
	}
}

func TestGenerateEnergyBounded(t *testing.T) {
	meta := WindmillLarge.Scaled(0.05)
	ds, err := Generate(meta, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Data.MinAll() < 0 || ds.Data.MaxAll() > 1 {
		t.Fatalf("energy output out of [0,1]: [%f, %f]", ds.Data.MinAll(), ds.Data.MaxAll())
	}
}

func TestGenerateEpidemicNonNegativeIntegers(t *testing.T) {
	ds, err := Generate(ChickenpoxHungary, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Data.Data()
	for _, v := range d {
		if v < 0 || v != math.Round(v) {
			t.Fatalf("case count %v must be a non-negative integer", v)
		}
	}
	if ds.Data.MaxAll() == 0 {
		t.Fatal("epidemic signal must not be all-zero")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	meta := MetrLA.Scaled(0.01)
	a, err := Generate(meta, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(meta, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Data.Equal(b.Data) {
		t.Fatal("generation must be deterministic per seed")
	}
	c, err := Generate(meta, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.Equal(c.Data) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateRejectsPaperScalePeMS(t *testing.T) {
	if _, err := Generate(PeMS, 1); err == nil {
		t.Fatal("full PeMS generation must be refused (use modeled pipelines)")
	}
}

func TestGenerateRejectsBadShapes(t *testing.T) {
	if _, err := Generate(Meta{Name: "x", Domain: Traffic, Nodes: 0, Entries: 5}, 1); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Generate(Meta{Name: "x", Domain: "quantum", Nodes: 3, Entries: 5, RawFeatures: 1, NeighborsK: 2}, 1); err == nil {
		t.Fatal("expected unknown-domain error")
	}
}

func TestAugmentTimeOfDay(t *testing.T) {
	data := tensor.Ones(6, 2, 1)
	aug := AugmentTimeOfDay(data, 4)
	if aug.Dim(2) != 2 {
		t.Fatalf("augmented features %d", aug.Dim(2))
	}
	// Original channel preserved.
	if aug.At(3, 1, 0) != 1 {
		t.Fatal("original feature clobbered")
	}
	// Time-of-day cycles with period 4.
	if aug.At(0, 0, 1) != 0 || aug.At(1, 0, 1) != 0.25 || aug.At(5, 1, 1) != 0.25 {
		t.Fatalf("time-of-day values wrong: %v %v %v", aug.At(0, 0, 1), aug.At(1, 0, 1), aug.At(5, 1, 1))
	}
	// Byte accounting: augmentation matches AugmentedBytes for the meta.
	meta := Meta{Nodes: 2, Entries: 6, RawFeatures: 1, TimeOfDay: true}
	if aug.NumBytes() != meta.AugmentedBytes() {
		t.Fatalf("augmented bytes %d want %d", aug.NumBytes(), meta.AugmentedBytes())
	}
}

func TestAugmentedHelper(t *testing.T) {
	meta := PeMSBay.Scaled(0.01)
	ds, err := Generate(meta, 3)
	if err != nil {
		t.Fatal(err)
	}
	aug := ds.Augmented()
	if aug.Dim(2) != 2 {
		t.Fatalf("traffic augmented features %d", aug.Dim(2))
	}
	epi, err := Generate(ChickenpoxHungary.Scaled(0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if epi.Augmented().Dim(2) != 1 {
		t.Fatal("epidemic dataset must not gain a time-of-day channel")
	}
}

func TestSaveLoadSignalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sig.pgti")
	data := tensor.Randn(tensor.NewRNG(1), 7, 3, 2)
	if err := SaveSignal(path, data); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSignal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(data) {
		t.Fatal("round trip mismatch")
	}
}

func TestLoadSignalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := SaveSignal(path, tensor.New(2, 2)); err == nil {
		t.Fatal("rank-2 save must fail")
	}
	if _, err := LoadSignal(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// Property: eq. (1) always exceeds eq. (2) once there is more than one
// snapshot, and the ratio is bounded by 2*horizon.
func TestPropertyGrowthDomination(t *testing.T) {
	f := func(entriesRaw, nodesRaw, horizonRaw uint16) bool {
		h := int(horizonRaw%12) + 1
		entries := int(entriesRaw%2000) + 2*h + 1
		nodes := int(nodesRaw%500) + 1
		m := Meta{Nodes: nodes, Entries: entries, RawFeatures: 1, Horizon: h}
		if m.StandardBytes() <= 0 {
			return false
		}
		ratio := float64(m.StandardBytes()) / float64(m.IndexBytes())
		return ratio <= float64(2*h) && m.IndexBytes() >= m.RawBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
