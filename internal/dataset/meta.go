// Package dataset defines the six spatiotemporal datasets of the paper's
// Table 1 — their exact shapes, the analytic byte-growth formulas (eqs. 1
// and 2), and seeded synthetic generators that stand in for the proprietary
// feeds (Caltrans PeMS, METR-LA loop detectors, Hungarian chickenpox
// surveillance, wind-farm SCADA). The generators reproduce Table 1's byte
// counts exactly (they are pure functions of the shapes) and provide enough
// spatiotemporal structure (diurnal cycles, rush-hour congestion diffusing
// over the sensor graph, seasonal epidemics) for the models to learn from.
package dataset

import (
	"errors"
	"fmt"
)

// ErrUnknownDataset is the sentinel wrapped by ByName when no dataset has
// the requested name; callers match it with errors.Is.
var ErrUnknownDataset = errors.New("unknown dataset")

// Domain classifies a dataset by application area.
type Domain string

// Domains used in the paper.
const (
	Traffic         Domain = "traffic"
	Energy          Domain = "energy"
	Epidemiological Domain = "epidemiological"
)

// Meta describes a dataset's shape and preprocessing parameters.
type Meta struct {
	Name        string
	Domain      Domain
	Nodes       int
	Entries     int
	RawFeatures int  // features in the source file (speed / output / cases)
	TimeOfDay   bool // whether preprocessing appends a time-of-day feature
	Horizon     int  // window size = prediction horizon (paper's settings)
	PeriodSteps int  // entries per diurnal/seasonal period (for generators
	// and the time-of-day feature)
	NeighborsK int // sensor-graph k-nearest neighbours
}

// Features returns the per-node feature count after stage-1 augmentation
// (Fig. 3): RawFeatures plus the time-of-day channel when enabled.
func (m Meta) Features() int {
	if m.TimeOfDay {
		return m.RawFeatures + 1
	}
	return m.RawFeatures
}

// Snapshots returns the number of valid sliding-window placements,
// entries - (2*horizon - 1): each snapshot needs horizon input steps and
// horizon label steps.
func (m Meta) Snapshots() int {
	s := m.Entries - (2*m.Horizon - 1)
	if s < 0 {
		return 0
	}
	return s
}

// RawBytes returns the on-disk size before preprocessing:
// entries x nodes x rawFeatures x 8 bytes (float64, Table 1 column 6).
func (m Meta) RawBytes() int64 {
	return int64(m.Entries) * int64(m.Nodes) * int64(m.RawFeatures) * 8
}

// AugmentedBytes returns the size after stage-1 feature augmentation
// (Fig. 3 stage 1: the time-of-day channel doubles traffic datasets).
func (m Meta) AugmentedBytes() int64 {
	return int64(m.Entries) * int64(m.Nodes) * int64(m.Features()) * 8
}

// StandardBytes returns eq. (1) of the paper — the materialized size after
// standard sliding-window preprocessing:
//
//	2 * (entries - (2*horizon - 1)) * horizon * nodes * features * 8
//
// This is Table 1's "Size After Preprocessing" column.
func (m Meta) StandardBytes() int64 {
	return 2 * int64(m.Snapshots()) * int64(m.Horizon) * int64(m.Nodes) * int64(m.Features()) * 8
}

// IndexBytes returns eq. (2) of the paper — the footprint under
// index-batching: one copy of the (augmented) data plus an 8-byte index per
// snapshot.
func (m Meta) IndexBytes() int64 {
	return m.AugmentedBytes() + int64(m.Snapshots())*8
}

// GrowthFactor returns StandardBytes / AugmentedBytes, the data-duplication
// multiplier eliminated by index-batching (~2*horizon).
func (m Meta) GrowthFactor() float64 {
	if m.AugmentedBytes() == 0 {
		return 0
	}
	return float64(m.StandardBytes()) / float64(m.AugmentedBytes())
}

// Scaled returns a copy with nodes and entries scaled by factor (minimum 1
// node; entries floor at 2*horizon so at least one snapshot survives).
// Measured-mode experiments run the identical pipelines at reduced scale.
func (m Meta) Scaled(factor float64) Meta {
	if factor <= 0 || factor > 1 {
		return m
	}
	s := m
	s.Name = fmt.Sprintf("%s@%.3g", m.Name, factor)
	s.Nodes = maxInt(1, int(float64(m.Nodes)*factor))
	s.Entries = maxInt(2*m.Horizon, int(float64(m.Entries)*factor))
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// The six datasets of Table 1, with the horizons that reproduce the table's
// post-preprocessing byte counts exactly: h=4 for Chickenpox, h=8 for
// Windmill, h=12 for the traffic datasets (speed + time-of-day features).
var (
	// ChickenpoxHungary: weekly county-level case counts, 20 nodes x 522
	// weeks. 83.52 kB raw -> 659.2 kB preprocessed.
	ChickenpoxHungary = Meta{
		Name: "Chickenpox-Hungary", Domain: Epidemiological,
		Nodes: 20, Entries: 522, RawFeatures: 1, TimeOfDay: false,
		Horizon: 4, PeriodSteps: 52, NeighborsK: 4,
	}
	// WindmillLarge: hourly energy output, 319 turbines x 17,472 hours.
	// 44.59 MB raw -> 712.80 MB preprocessed.
	WindmillLarge = Meta{
		Name: "Windmill-Large", Domain: Energy,
		Nodes: 319, Entries: 17472, RawFeatures: 1, TimeOfDay: false,
		Horizon: 8, PeriodSteps: 24, NeighborsK: 8,
	}
	// MetrLA: LA loop-detector speeds, 207 sensors x 34,272 five-minute
	// intervals. 54 MB raw -> 2.54 GB preprocessed.
	MetrLA = Meta{
		Name: "METR-LA", Domain: Traffic,
		Nodes: 207, Entries: 34272, RawFeatures: 1, TimeOfDay: true,
		Horizon: 12, PeriodSteps: 288, NeighborsK: 8,
	}
	// PeMSBay: Bay Area speeds, 325 sensors x 52,105 intervals.
	// 130 MB raw -> 6.05 GB preprocessed.
	PeMSBay = Meta{
		Name: "PeMS-BAY", Domain: Traffic,
		Nodes: 325, Entries: 52105, RawFeatures: 1, TimeOfDay: true,
		Horizon: 12, PeriodSteps: 288, NeighborsK: 8,
	}
	// PeMSAllLA: the All-LA district, 2,716 sensors x 105,120 intervals
	// (one year at 5 minutes). 2.12 GB raw -> 102.08 GB preprocessed.
	PeMSAllLA = Meta{
		Name: "PeMS-All-LA", Domain: Traffic,
		Nodes: 2716, Entries: 105120, RawFeatures: 1, TimeOfDay: true,
		Horizon: 12, PeriodSteps: 288, NeighborsK: 8,
	}
	// PeMS: the full statewide dataset, 11,160 sensors x 105,120 intervals.
	// 8.74 GB raw -> 419.44 GB preprocessed; the dataset that OOMs a 512 GB
	// Polaris node under standard preprocessing.
	PeMS = Meta{
		Name: "PeMS", Domain: Traffic,
		Nodes: 11160, Entries: 105120, RawFeatures: 1, TimeOfDay: true,
		Horizon: 12, PeriodSteps: 288, NeighborsK: 8,
	}
)

// All lists the Table 1 datasets in ascending size order.
func All() []Meta {
	return []Meta{ChickenpoxHungary, WindmillLarge, MetrLA, PeMSBay, PeMSAllLA, PeMS}
}

// ByName returns the dataset metadata with the given name.
func ByName(name string) (Meta, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("dataset: %w %q", ErrUnknownDataset, name)
}
