package dataset

import (
	"fmt"
	"math"

	"pgti/internal/graph"
	"pgti/internal/tensor"
)

// MaxGenerateElements caps in-memory synthetic generation (entries x nodes).
// Paper-scale datasets (full PeMS is 1.2e9 node-steps) are handled by the
// modeled pipelines, which never materialize them; measured-mode runs use
// Meta.Scaled. The cap is a guard against accidentally materializing tens of
// gigabytes.
const MaxGenerateElements = 200_000_000

// Dataset is a generated spatiotemporal dataset: the raw signal tensor
// [entries, nodes, rawFeatures] and its sensor graph.
type Dataset struct {
	Meta  Meta
	Data  *tensor.Tensor
	Graph *graph.Graph
}

// stepper produces one timestep of the raw signal at a time, carrying the
// generator's AR state between calls. out holds nodes*rawFeatures values
// (the row layout of the materialized tensor).
type stepper interface {
	step(t int, out []float64)
}

// Generator emits a dataset one timestep at a time: the incremental form of
// Generate that the streaming source consumes. Timesteps arrive in order;
// materializing meta.Entries of them reproduces Generate(meta, seed) bitwise,
// because Generate itself is implemented on top of a Generator. The stepper
// keeps running past meta.Entries (the AR processes are unbounded), so a
// stream can outlive the offline dataset's nominal length.
type Generator struct {
	Meta  Meta
	Graph *graph.Graph
	st    stepper
	t     int
}

// NewGenerator validates meta, builds the sensor graph, and seeds the
// domain stepper.
func NewGenerator(meta Meta, seed uint64) (*Generator, error) {
	if meta.Nodes <= 0 || meta.Entries <= 0 {
		return nil, fmt.Errorf("dataset: invalid shape %dx%d for %s", meta.Entries, meta.Nodes, meta.Name)
	}
	g, err := graph.RoadNetwork(seed, meta.Nodes, meta.NeighborsK)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed ^ 0xdecade)
	var st stepper
	switch meta.Domain {
	case Traffic:
		st = newTrafficStepper(rng, g, meta)
	case Energy:
		st = newEnergyStepper(rng, g, meta)
	case Epidemiological:
		st = newEpidemicStepper(rng, g, meta)
	default:
		return nil, fmt.Errorf("dataset: unknown domain %q", meta.Domain)
	}
	return &Generator{Meta: meta, Graph: g, st: st}, nil
}

// RowLen returns the per-timestep value count, nodes*rawFeatures.
func (gen *Generator) RowLen() int { return gen.Meta.Nodes * gen.Meta.RawFeatures }

// Step returns the current timestep index (the next Next call's t).
func (gen *Generator) Step() int { return gen.t }

// Next writes the next timestep into out (length RowLen) and advances the
// generator state.
func (gen *Generator) Next(out []float64) {
	if len(out) != gen.RowLen() {
		panic(fmt.Sprintf("dataset: generator row is %d values, got buffer of %d", gen.RowLen(), len(out)))
	}
	gen.st.step(gen.t, out)
	gen.t++
}

// Generate synthesizes a dataset matching meta's shape, deterministically
// for a given seed. The domain selects the generator:
//
//   - Traffic: per-sensor free-flow speeds with rush-hour congestion that
//     diffuses across the sensor graph (an AR process coupled through the
//     forward transition matrix) — the structure DCRNN is built to exploit.
//   - Energy: regional weather fronts (slow AR) with turbine-local
//     turbulence and a mild diurnal cycle.
//   - Epidemiological: seasonal baseline with multiplicative outbreak waves
//     that spread to graph neighbours.
func Generate(meta Meta, seed uint64) (*Dataset, error) {
	if meta.Nodes > 0 && meta.Entries > 0 && int64(meta.Nodes)*int64(meta.Entries) > MaxGenerateElements {
		return nil, fmt.Errorf("dataset: %s at full scale (%d node-steps) exceeds the generation cap; use Meta.Scaled for measured runs or the modeled pipelines for paper scale",
			meta.Name, int64(meta.Nodes)*int64(meta.Entries))
	}
	gen, err := NewGenerator(meta, seed)
	if err != nil {
		return nil, err
	}
	data := tensor.New(meta.Entries, meta.Nodes, meta.RawFeatures)
	d := data.Data()
	row := gen.RowLen()
	for t := 0; t < meta.Entries; t++ {
		gen.Next(d[t*row : (t+1)*row])
	}
	return &Dataset{Meta: meta, Data: data, Graph: gen.Graph}, nil
}

// trafficStepper synthesizes loop-detector speeds in mph.
type trafficStepper struct {
	rng        *tensor.RNG
	fwd        *graphTransition
	free       []float64 // free-flow speed per sensor
	congestion []float64
	diffused   []float64
	n, rawF    int
	period     int
}

// graphTransition narrows the dependency to the one operation steppers use.
type graphTransition struct {
	mulVec func([]float64) []float64
}

func transitionOf(g *graph.Graph) *graphTransition {
	fwd, _ := g.TransitionMatrices()
	return &graphTransition{mulVec: fwd.MulVec}
}

func newTrafficStepper(rng *tensor.RNG, g *graph.Graph, meta Meta) *trafficStepper {
	n := meta.Nodes
	fwd := transitionOf(g)
	free := make([]float64, n)
	for i := range free {
		free[i] = 55 + 15*rng.Float64()
	}
	period := meta.PeriodSteps
	if period <= 0 {
		period = 288
	}
	return &trafficStepper{
		rng: rng, fwd: fwd, free: free,
		congestion: make([]float64, n), diffused: make([]float64, n),
		n: n, rawF: meta.RawFeatures, period: period,
	}
}

func (ts *trafficStepper) step(t int, out []float64) {
	tod := float64(t%ts.period) / float64(ts.period)
	day := t / ts.period
	weekday := day%7 < 5
	rush := rushIntensity(tod)
	if !weekday {
		rush *= 0.3
	}
	// Congestion diffuses to downstream sensors through the graph.
	copy(ts.diffused, ts.congestion)
	ts.diffused = ts.fwd.mulVec(ts.diffused)
	for i := 0; i < ts.n; i++ {
		ts.congestion[i] = 0.60*ts.congestion[i] + 0.25*ts.diffused[i] + 0.45*rush + 0.08*ts.rng.NormFloat64()
		if ts.congestion[i] < 0 {
			ts.congestion[i] = 0
		}
		if ts.congestion[i] > 1.6 {
			ts.congestion[i] = 1.6
		}
		speed := ts.free[i]*(1-0.45*math.Tanh(ts.congestion[i])) + 1.5*ts.rng.NormFloat64()
		if speed < 3 {
			speed = 3
		}
		out[i*ts.rawF] = speed
	}
}

// rushIntensity is a double-peaked daily congestion profile (morning and
// evening rush hours).
func rushIntensity(tod float64) float64 {
	peak := func(center, width float64) float64 {
		d := tod - center
		return math.Exp(-(d * d) / (2 * width * width))
	}
	return peak(0.33, 0.045) + 0.9*peak(0.73, 0.06)
}

// energyStepper synthesizes normalized turbine output in [0, 1].
type energyStepper struct {
	rng      *tensor.RNG
	fwd      *graphTransition
	regional float64 // slow weather-front process shared via graph diffusion
	local    []float64
	n, rawF  int
	period   int
}

func newEnergyStepper(rng *tensor.RNG, g *graph.Graph, meta Meta) *energyStepper {
	n := meta.Nodes
	fwd := transitionOf(g)
	local := make([]float64, n)
	for i := range local {
		local[i] = rng.Float64() * 0.2
	}
	period := meta.PeriodSteps
	if period <= 0 {
		period = 24
	}
	return &energyStepper{
		rng: rng, fwd: fwd, regional: 0.5, local: local,
		n: n, rawF: meta.RawFeatures, period: period,
	}
}

func (es *energyStepper) step(t int, out []float64) {
	es.regional = 0.995*es.regional + 0.01*es.rng.NormFloat64()
	if es.regional < 0 {
		es.regional = 0
	}
	if es.regional > 1 {
		es.regional = 1
	}
	diurnal := 0.12 * math.Sin(2*math.Pi*float64(t%es.period)/float64(es.period))
	smoothed := es.fwd.mulVec(es.local)
	for i := 0; i < es.n; i++ {
		es.local[i] = 0.85*es.local[i] + 0.1*smoothed[i] + 0.05*es.rng.NormFloat64()
		wind := es.regional + diurnal + es.local[i]
		if wind < 0 {
			wind = 0
		}
		if wind > 1 {
			wind = 1
		}
		// Cubic power curve, softened.
		out[i*es.rawF] = wind * wind * (3 - 2*wind)
	}
}

// epidemicStepper synthesizes weekly case counts.
type epidemicStepper struct {
	rng       *tensor.RNG
	fwd       *graphTransition
	pop       []float64 // county scale factor
	infection []float64
	n, rawF   int
	period    int
}

func newEpidemicStepper(rng *tensor.RNG, g *graph.Graph, meta Meta) *epidemicStepper {
	n := meta.Nodes
	fwd := transitionOf(g)
	pop := make([]float64, n)
	for i := range pop {
		pop[i] = 20 + 80*rng.Float64()
	}
	infection := make([]float64, n)
	for i := range infection {
		infection[i] = 0.5 + 0.2*rng.NormFloat64()
	}
	period := meta.PeriodSteps
	if period <= 0 {
		period = 52
	}
	return &epidemicStepper{
		rng: rng, fwd: fwd, pop: pop, infection: infection,
		n: n, rawF: meta.RawFeatures, period: period,
	}
}

func (ep *epidemicStepper) step(t int, out []float64) {
	season := 1 + 0.6*math.Cos(2*math.Pi*float64(t%ep.period)/float64(ep.period))
	spread := ep.fwd.mulVec(ep.infection)
	for i := 0; i < ep.n; i++ {
		ep.infection[i] = 0.7*ep.infection[i] + 0.2*spread[i] + 0.1*(0.5+0.5*ep.rng.Float64())
		if ep.infection[i] < 0.05 {
			ep.infection[i] = 0.05
		}
		cases := ep.pop[i] * ep.infection[i] * season * (0.9 + 0.2*ep.rng.Float64())
		if cases < 0 {
			cases = 0
		}
		out[i*ep.rawF] = math.Round(cases)
	}
}

// AugmentTimeOfDay implements stage 1 of Fig. 3: append a normalized
// time-of-day feature ((t mod period)/period, identical for every node) to
// a [entries, nodes, F] tensor, returning [entries, nodes, F+1]. This is the
// step that doubles the traffic datasets' footprint before SWA even begins.
func AugmentTimeOfDay(data *tensor.Tensor, periodSteps int) *tensor.Tensor {
	if data.Rank() != 3 {
		panic(fmt.Sprintf("dataset: AugmentTimeOfDay expects rank 3, got %v", data.Shape()))
	}
	if periodSteps <= 0 {
		periodSteps = 288
	}
	e, n, f := data.Dim(0), data.Dim(1), data.Dim(2)
	out := tensor.New(e, n, f+1)
	out.Slice(2, 0, f).CopyFrom(data)
	for t := 0; t < e; t++ {
		tod := float64(t%periodSteps) / float64(periodSteps)
		step := out.Index(0, t) // [n, f+1]
		for i := 0; i < n; i++ {
			step.Set(tod, i, f)
		}
	}
	return out
}

// Augmented returns the model-ready signal: the raw data with the
// time-of-day channel appended when the dataset calls for it.
func (ds *Dataset) Augmented() *tensor.Tensor {
	if !ds.Meta.TimeOfDay {
		return ds.Data
	}
	return AugmentTimeOfDay(ds.Data, ds.Meta.PeriodSteps)
}
