package dataset

import (
	"fmt"
	"math"

	"pgti/internal/graph"
	"pgti/internal/tensor"
)

// MaxGenerateElements caps in-memory synthetic generation (entries x nodes).
// Paper-scale datasets (full PeMS is 1.2e9 node-steps) are handled by the
// modeled pipelines, which never materialize them; measured-mode runs use
// Meta.Scaled. The cap is a guard against accidentally materializing tens of
// gigabytes.
const MaxGenerateElements = 200_000_000

// Dataset is a generated spatiotemporal dataset: the raw signal tensor
// [entries, nodes, rawFeatures] and its sensor graph.
type Dataset struct {
	Meta  Meta
	Data  *tensor.Tensor
	Graph *graph.Graph
}

// Generate synthesizes a dataset matching meta's shape, deterministically
// for a given seed. The domain selects the generator:
//
//   - Traffic: per-sensor free-flow speeds with rush-hour congestion that
//     diffuses across the sensor graph (an AR process coupled through the
//     forward transition matrix) — the structure DCRNN is built to exploit.
//   - Energy: regional weather fronts (slow AR) with turbine-local
//     turbulence and a mild diurnal cycle.
//   - Epidemiological: seasonal baseline with multiplicative outbreak waves
//     that spread to graph neighbours.
func Generate(meta Meta, seed uint64) (*Dataset, error) {
	if meta.Nodes <= 0 || meta.Entries <= 0 {
		return nil, fmt.Errorf("dataset: invalid shape %dx%d for %s", meta.Entries, meta.Nodes, meta.Name)
	}
	if int64(meta.Nodes)*int64(meta.Entries) > MaxGenerateElements {
		return nil, fmt.Errorf("dataset: %s at full scale (%d node-steps) exceeds the generation cap; use Meta.Scaled for measured runs or the modeled pipelines for paper scale",
			meta.Name, int64(meta.Nodes)*int64(meta.Entries))
	}
	g, err := graph.RoadNetwork(seed, meta.Nodes, meta.NeighborsK)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed ^ 0xdecade)
	var data *tensor.Tensor
	switch meta.Domain {
	case Traffic:
		data = generateTraffic(rng, g, meta)
	case Energy:
		data = generateEnergy(rng, g, meta)
	case Epidemiological:
		data = generateEpidemic(rng, g, meta)
	default:
		return nil, fmt.Errorf("dataset: unknown domain %q", meta.Domain)
	}
	return &Dataset{Meta: meta, Data: data, Graph: g}, nil
}

// generateTraffic synthesizes loop-detector speeds in mph.
func generateTraffic(rng *tensor.RNG, g *graph.Graph, meta Meta) *tensor.Tensor {
	n := meta.Nodes
	fwd, _ := g.TransitionMatrices()
	free := make([]float64, n) // free-flow speed per sensor
	for i := range free {
		free[i] = 55 + 15*rng.Float64()
	}
	congestion := make([]float64, n)
	period := meta.PeriodSteps
	if period <= 0 {
		period = 288
	}
	data := tensor.New(meta.Entries, n, meta.RawFeatures)
	d := data.Data()
	diffused := make([]float64, n)
	for t := 0; t < meta.Entries; t++ {
		tod := float64(t%period) / float64(period)
		day := t / period
		weekday := day%7 < 5
		rush := rushIntensity(tod)
		if !weekday {
			rush *= 0.3
		}
		// Congestion diffuses to downstream sensors through the graph.
		copy(diffused, congestion)
		diffused = fwd.MulVec(diffused)
		for i := 0; i < n; i++ {
			congestion[i] = 0.60*congestion[i] + 0.25*diffused[i] + 0.45*rush + 0.08*rng.NormFloat64()
			if congestion[i] < 0 {
				congestion[i] = 0
			}
			if congestion[i] > 1.6 {
				congestion[i] = 1.6
			}
			speed := free[i]*(1-0.45*math.Tanh(congestion[i])) + 1.5*rng.NormFloat64()
			if speed < 3 {
				speed = 3
			}
			d[(t*n+i)*meta.RawFeatures] = speed
		}
	}
	return data
}

// rushIntensity is a double-peaked daily congestion profile (morning and
// evening rush hours).
func rushIntensity(tod float64) float64 {
	peak := func(center, width float64) float64 {
		d := tod - center
		return math.Exp(-(d * d) / (2 * width * width))
	}
	return peak(0.33, 0.045) + 0.9*peak(0.73, 0.06)
}

// generateEnergy synthesizes normalized turbine output in [0, 1].
func generateEnergy(rng *tensor.RNG, g *graph.Graph, meta Meta) *tensor.Tensor {
	n := meta.Nodes
	fwd, _ := g.TransitionMatrices()
	regional := 0.5 // slow weather-front process shared via graph diffusion
	local := make([]float64, n)
	for i := range local {
		local[i] = rng.Float64() * 0.2
	}
	period := meta.PeriodSteps
	if period <= 0 {
		period = 24
	}
	data := tensor.New(meta.Entries, n, meta.RawFeatures)
	d := data.Data()
	for t := 0; t < meta.Entries; t++ {
		regional = 0.995*regional + 0.01*rng.NormFloat64()
		if regional < 0 {
			regional = 0
		}
		if regional > 1 {
			regional = 1
		}
		diurnal := 0.12 * math.Sin(2*math.Pi*float64(t%period)/float64(period))
		smoothed := fwd.MulVec(local)
		for i := 0; i < n; i++ {
			local[i] = 0.85*local[i] + 0.1*smoothed[i] + 0.05*rng.NormFloat64()
			wind := regional + diurnal + local[i]
			if wind < 0 {
				wind = 0
			}
			if wind > 1 {
				wind = 1
			}
			// Cubic power curve, softened.
			d[(t*n+i)*meta.RawFeatures] = wind * wind * (3 - 2*wind)
		}
	}
	return data
}

// generateEpidemic synthesizes weekly case counts.
func generateEpidemic(rng *tensor.RNG, g *graph.Graph, meta Meta) *tensor.Tensor {
	n := meta.Nodes
	fwd, _ := g.TransitionMatrices()
	pop := make([]float64, n) // county scale factor
	for i := range pop {
		pop[i] = 20 + 80*rng.Float64()
	}
	infection := make([]float64, n)
	for i := range infection {
		infection[i] = 0.5 + 0.2*rng.NormFloat64()
	}
	period := meta.PeriodSteps
	if period <= 0 {
		period = 52
	}
	data := tensor.New(meta.Entries, n, meta.RawFeatures)
	d := data.Data()
	for t := 0; t < meta.Entries; t++ {
		season := 1 + 0.6*math.Cos(2*math.Pi*float64(t%period)/float64(period))
		spread := fwd.MulVec(infection)
		for i := 0; i < n; i++ {
			infection[i] = 0.7*infection[i] + 0.2*spread[i] + 0.1*(0.5+0.5*rng.Float64())
			if infection[i] < 0.05 {
				infection[i] = 0.05
			}
			cases := pop[i] * infection[i] * season * (0.9 + 0.2*rng.Float64())
			if cases < 0 {
				cases = 0
			}
			d[(t*n+i)*meta.RawFeatures] = math.Round(cases)
		}
	}
	return data
}

// AugmentTimeOfDay implements stage 1 of Fig. 3: append a normalized
// time-of-day feature ((t mod period)/period, identical for every node) to
// a [entries, nodes, F] tensor, returning [entries, nodes, F+1]. This is the
// step that doubles the traffic datasets' footprint before SWA even begins.
func AugmentTimeOfDay(data *tensor.Tensor, periodSteps int) *tensor.Tensor {
	if data.Rank() != 3 {
		panic(fmt.Sprintf("dataset: AugmentTimeOfDay expects rank 3, got %v", data.Shape()))
	}
	if periodSteps <= 0 {
		periodSteps = 288
	}
	e, n, f := data.Dim(0), data.Dim(1), data.Dim(2)
	out := tensor.New(e, n, f+1)
	out.Slice(2, 0, f).CopyFrom(data)
	for t := 0; t < e; t++ {
		tod := float64(t%periodSteps) / float64(periodSteps)
		step := out.Index(0, t) // [n, f+1]
		for i := 0; i < n; i++ {
			step.Set(tod, i, f)
		}
	}
	return out
}

// Augmented returns the model-ready signal: the raw data with the
// time-of-day channel appended when the dataset calls for it.
func (ds *Dataset) Augmented() *tensor.Tensor {
	if !ds.Meta.TimeOfDay {
		return ds.Data
	}
	return AugmentTimeOfDay(ds.Data, ds.Meta.PeriodSteps)
}
