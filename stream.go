package pgti

import (
	"context"
	"fmt"
	"time"

	"pgti/internal/core"
	"pgti/internal/dataset"
	"pgti/internal/stream"
)

// Streaming: online ingestion and rolling retraining over the staged
// lifecycle.
//
//	st, _ := pgti.NewStream("Chickenpox-Hungary", 42, pgti.StreamOptions{
//		Window: 256, Interval: time.Minute})
//	defer st.Close()
//	srv, _ := pgti.NewServer(exp, pgti.WithReplicas(2))
//	rounds, err := st.Retrain(ctx, pgti.RetrainOptions{
//		Window: 200, Advance: 100, Rounds: 3, Server: srv,
//	}, pgti.WithEpochs(2), pgti.WithPrefetch())
//
// A Stream ingests the signal one timestep at a time into a bounded
// sliding-window ring; Retrain materializes each window into an ordinary
// dataset, runs a warm-started Fit through the ordinary engine (every
// option composes: spatial sharding, repartitioning, tracing, events), and
// publishes the refreshed weights into a live Server without draining.
// Determinism carries over from the offline path: arrivals advance a
// modeled ingest clock, and a single-window replay of the whole stream
// reproduces the offline experiment's curve — and, under modeled costs, its
// virtual clock — bitwise.

// StreamOptions parameterizes NewStream's ingestion.
type StreamOptions struct {
	// Window is the ring capacity in timesteps — the bounded history the
	// stream retains. Must hold at least one training snapshot (2*horizon
	// timesteps). The producer never evicts an unreleased timestep:
	// backpressure, not data loss, is the overflow behavior.
	Window int
	// Interval is the modeled arrival spacing: ingesting timestep t
	// advances the ingest clock to (t+1)*Interval. Zero models an
	// instantaneous backfill.
	Interval time.Duration
	// Total caps the stream length in timesteps; 0 streams the dataset's
	// full length, matching the offline run.
	Total int
}

// Stream is a live ingestion handle over a named dataset's signal: a
// background producer fills a bounded sliding-window ring that Retrain
// consumes. Construct with NewStream; Close when done (idempotent, and safe
// mid-Retrain — the run ends with a typed error after the current round).
type Stream struct {
	src *stream.Source
}

// NewStream starts streaming the named dataset's signal (same generator,
// same seed semantics as the offline path — timestep t is bitwise the
// offline dataset's row t).
func NewStream(datasetName string, seed uint64, o StreamOptions) (*Stream, error) {
	meta, err := dataset.ByName(datasetName)
	if err != nil {
		return nil, fmt.Errorf("pgti: %w (available: %v)", err, Datasets())
	}
	src, err := stream.NewSource(meta, seed, stream.Options{
		Window: o.Window, Interval: o.Interval, Total: o.Total,
	})
	if err != nil {
		return nil, fmt.Errorf("pgti: %w", err)
	}
	return &Stream{src: src}, nil
}

// Retained reports the window of timesteps currently held, [lo, hi).
func (s *Stream) Retained() (lo, hi int) { return s.src.Retained() }

// IngestClock returns the modeled arrival clock: ingested timesteps times
// the configured interval, independent of host scheduling.
func (s *Stream) IngestClock() time.Duration { return s.src.IngestClock() }

// Stats returns the exact mean and standard deviation over the currently
// retained window (recomputed incrementally, renormalized on eviction).
func (s *Stream) Stats() (mean, std float64) { return s.src.Stats() }

// Close stops ingestion and wakes every waiter; a Retrain in flight returns
// its completed rounds alongside a "source closed" error. Idempotent.
func (s *Stream) Close() { s.src.Close() }

// StreamRound is one completed rolling-retrain round.
type StreamRound struct {
	// Round is the zero-based round index; the round trained on timesteps
	// [Lo, Hi).
	Round, Lo, Hi int
	// Report is the round's full training report.
	Report *Report
	// Swapped reports that the round's weights were published into the
	// Server.
	Swapped bool
	// Attempts is how many Fit attempts the round took (1 = no retry; see
	// RetrainOptions.MaxRetries).
	Attempts int
	// RetryDelay is the modeled backoff accumulated across the round's
	// failed attempts.
	RetryDelay time.Duration
}

// RetrainOptions parameterizes Stream.Retrain.
type RetrainOptions struct {
	// Window is the training window length in timesteps (default: the
	// stream's full ring).
	Window int
	// Advance slides the window between rounds (default Window: tumbling).
	Advance int
	// Rounds is the number of retraining rounds (default 1).
	Rounds int
	// Cold disables warm-starting: every round reinitializes from the seed.
	// Round 0 is always cold — that is what makes a one-round replay
	// bitwise-identical to the offline run.
	Cold bool
	// Server, when set, receives each round's weights through an atomic
	// Swap — in-flight predictions finish on the old weights, later ones
	// see only the new.
	Server *Server
	// OnRound observes each completed round synchronously.
	OnRound func(r StreamRound)
	// RoundOptions, when set, supplies extra options applied on top of the
	// base option set for the given round — the hook for per-round state
	// such as a fresh trace recorder (recorders cannot span rounds: each
	// round's virtual clocks restart at zero) or a decaying learning rate.
	// The returned options must keep the configuration legal.
	RoundOptions func(round int) []Option
	// MaxRetries is how many extra attempts a round whose Fit fails gets —
	// each on a fresh engine over the same materialized window — before
	// Retrain gives up. A failed attempt never publishes weights into the
	// Server and never releases window history, so a retry trains the
	// identical window. Cancellation is never retried. Default 0.
	MaxRetries int
	// RetryBackoff is the modeled delay before retry k of a round, doubling
	// per retry and accumulated into the round's RetryDelay. Purely virtual.
	RetryBackoff time.Duration
}

// Retrain drives rolling retraining over the stream: wait for the next
// window to fill, materialize it, Fit with the given experiment options
// (warm-started from the previous round), publish the weights, release the
// history behind the window. Returns the completed rounds — also alongside
// an error, when the stream closes or a round's Fit fails mid-run.
// Checkpointing and dataset-mutating options (WithScale, WithMissingData,
// WithWarmStart, WithResume, WithSaveCheckpoint) do not compose with
// streaming and are rejected.
func (s *Stream) Retrain(ctx context.Context, ro RetrainOptions, opts ...Option) ([]StreamRound, error) {
	c := &expConfig{}
	for _, opt := range opts {
		opt(c)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("pgti: %w", err)
	}
	c.core.SamplerSet = c.shuffleSet
	window := ro.Window
	if window == 0 {
		window = s.src.Window()
	}
	rc := stream.RetrainConfig{
		Base:         c.core,
		Window:       window,
		Advance:      ro.Advance,
		Rounds:       ro.Rounds,
		Cold:         ro.Cold,
		MaxRetries:   ro.MaxRetries,
		RetryBackoff: ro.RetryBackoff,
	}
	if ro.Server != nil {
		rc.Swap = ro.Server.srv.Swap
	}
	if ro.OnRound != nil {
		rc.OnRound = func(r stream.Round) { ro.OnRound(publicRound(r)) }
	}
	if ro.RoundOptions != nil {
		rc.Configure = func(round int, cfg *core.Config) {
			tmp := &expConfig{core: *cfg}
			for _, opt := range ro.RoundOptions(round) {
				opt(tmp)
			}
			*cfg = tmp.core
		}
	}
	rt, err := stream.NewRetrainer(s.src, rc)
	if err != nil {
		return nil, fmt.Errorf("pgti: %w", err)
	}
	rounds, err := rt.Run(ctx)
	out := make([]StreamRound, len(rounds))
	for i, r := range rounds {
		out[i] = publicRound(r)
	}
	if err != nil {
		return out, fmt.Errorf("pgti: %w", err)
	}
	return out, nil
}

func publicRound(r stream.Round) StreamRound {
	return StreamRound{Round: r.Round, Lo: r.Lo, Hi: r.Hi,
		Report: reportFromCore(r.Report), Swapped: r.Swapped,
		Attempts: r.Attempts, RetryDelay: r.RetryDelay}
}
