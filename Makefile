GO ?= go

# The benchmark families gated by the CI perf regression check: DDP gradient
# sync, spatial sharding, the distributed index-batching strategies, the
# event-stream hook path (hooked vs hookless must stay indistinguishable),
# the serving tier's modeled latency/throughput under its virtual clock, the
# staleness-aware prefetch pipeline on the hybrid grid, the streaming
# subsystem (window replay and mid-run elastic repartitioning), and the fault
# layer (modeled recovery overhead of a mid-epoch rank crash and of a serving
# replica failover).
BENCH_GATED = $(GO) test -run '^$$' -bench 'BenchmarkDDP|BenchmarkShard|BenchmarkIndexBatch|BenchmarkEventStream|BenchmarkServe|BenchmarkPipeline|BenchmarkStream|BenchmarkFault' -benchtime=1x .

# Per-package statement-coverage floors (pkg:percent), enforced by `make
# cover` and the CI workflow. Raise a floor when coverage grows; lowering one
# is a reviewed decision, not a quick fix for a red build.
COVER_FLOORS = internal/shard:85 internal/cluster:90 internal/graph:90 internal/core:85 internal/sparse:85 internal/autograd:80 internal/serve:85 internal/stream:85 internal/fault:95 .:75

.PHONY: ci build vet fmt-check test race cover bench bench-smoke bench-json bench-baseline bench-check bench-ci trace-smoke stream-smoke chaos-smoke

## ci runs the exact tier-1 gate the CI workflow enforces.
ci: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

## race needs an explicit per-package timeout: the instrumented core suite
## exceeds go test's 10m default on single-core machines (no race, just slow).
race:
	$(GO) test -race -timeout 30m ./...

## cover fails when any floor package's statement coverage drops below its
## checked-in COVER_FLOORS threshold.
cover:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		out=$$($(GO) test -cover ./$$pkg | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL   $$pkg: no coverage reported: $$out"; fail=1; continue; fi; \
		if awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p >= f)}'; then \
			echo "OK     $$pkg coverage $$pct% (floor $$floor%)"; \
		else \
			echo "FAIL   $$pkg coverage $$pct% below floor $$floor%"; fail=1; \
		fi; \
	done; exit $$fail

## bench runs the full benchmark suite with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-smoke runs every benchmark once, as a does-it-still-run gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

## bench-json emits a machine-readable perf snapshot (BENCH_* trajectory).
## Staged through a temp file so a benchmark failure fails the target
## instead of being masked by the pipeline's last command.
bench-json:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench . -benchtime=1x . > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp"

## bench-baseline regenerates the committed perf baseline for the gated
## benchmark families (run after a deliberate perf change).
bench-baseline:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_GATED) > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp" > bench/baseline.json; \
	echo "wrote bench/baseline.json"

## bench-check fails when the gated families' modeled metrics regress >20%
## against bench/baseline.json (the CI perf gate).
bench-check:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_GATED) > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson -check bench/baseline.json < "$$tmp"

## trace-smoke exercises the observability layer end to end: a traced 2x2
## hybrid fit and a traced serve burst, each schema-validated by pgti-trace
## (well-formed Perfetto JSON, monotone per-thread timestamps, nested spans,
## balanced async pairs). CI uploads both traces as artifacts.
trace-smoke:
	$(GO) run ./cmd/pgti-train -dataset Chickenpox-Hungary -epochs 2 \
		-strategy dist-index -workers 2 -shards 2 -quiet -trace train-trace.json
	$(GO) run ./cmd/pgti-trace train-trace.json
	$(GO) run ./cmd/pgti-serve -dataset Chickenpox-Hungary -epochs 2 \
		-retrain-epochs 0 -clients 4 -requests 16 -trace serve-trace.json
	$(GO) run ./cmd/pgti-trace serve-trace.json

## stream-smoke exercises the streaming subsystem end to end: bootstrap fit →
## live server → sliding-window ingestion → rolling warm-started retrains with
## atomic weight swaps → serve burst, with the final round's training trace
## and the burst's serving trace each schema-validated by pgti-trace. CI
## uploads both traces as artifacts.
stream-smoke:
	$(GO) run ./cmd/pgti-stream -rounds 2 -epochs 1 \
		-fit-trace stream-fit-trace.json -serve-trace stream-serve-trace.json
	$(GO) run ./cmd/pgti-trace stream-fit-trace.json
	$(GO) run ./cmd/pgti-trace stream-serve-trace.json

## chaos-smoke exercises the fault layer end to end: a seeded crash +
## straggler schedule over a traced 2x2 hybrid fit (detect, roll back,
## re-plan onto the survivors, continue), and a traced serve burst whose
## first replica dies mid-load (evict, retry on the healthy replica under
## modeled backoff). Both traces — fault and recovery spans included — are
## schema-validated by pgti-trace; CI uploads them as artifacts.
chaos-smoke:
	$(GO) run ./cmd/pgti-train -dataset Chickenpox-Hungary -epochs 2 \
		-strategy dist-index -workers 2 -shards 2 -quiet \
		-fault-seed 11 -crash-rank 3 -crash-at 8ms \
		-straggler-rank 0 -straggler-factor 2 -straggler-until 20ms \
		-trace chaos-train-trace.json
	$(GO) run ./cmd/pgti-trace chaos-train-trace.json
	$(GO) run ./cmd/pgti-serve -dataset Chickenpox-Hungary -epochs 2 \
		-retrain-epochs 0 -clients 4 -requests 16 \
		-fail-replica 0 -fail-after 2 -retry-backoff 4ms \
		-trace chaos-serve-trace.json
	$(GO) run ./cmd/pgti-trace chaos-serve-trace.json

## bench-ci runs the full benchmark suite ONCE, writing the perf snapshot to
## bench-snapshot.json and gating that same run against the baseline — the
## uploaded artifact and the gate verdict always describe one execution.
bench-ci:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench . -benchtime=1x . > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp" > bench-snapshot.json; \
	$(GO) run ./cmd/pgti-benchjson -check bench/baseline.json < "$$tmp"
