GO ?= go

.PHONY: ci build vet fmt-check test race bench bench-smoke bench-json

## ci runs the exact tier-1 gate the CI workflow enforces.
ci: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the full benchmark suite with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-smoke runs every benchmark once, as a does-it-still-run gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

## bench-json emits a machine-readable perf snapshot (BENCH_* trajectory).
## Staged through a temp file so a benchmark failure fails the target
## instead of being masked by the pipeline's last command.
bench-json:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench . -benchtime=1x . > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp"
