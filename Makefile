GO ?= go

# The gradient-sync benchmark family gated by the CI perf regression check.
BENCH_DDP = $(GO) test -run '^$$' -bench 'BenchmarkDDP' -benchtime=1x .

.PHONY: ci build vet fmt-check test race bench bench-smoke bench-json bench-baseline bench-check bench-ci

## ci runs the exact tier-1 gate the CI workflow enforces.
ci: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the full benchmark suite with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-smoke runs every benchmark once, as a does-it-still-run gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

## bench-json emits a machine-readable perf snapshot (BENCH_* trajectory).
## Staged through a temp file so a benchmark failure fails the target
## instead of being masked by the pipeline's last command.
bench-json:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench . -benchtime=1x . > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp"

## bench-baseline regenerates the committed perf baseline for the gated
## gradient-sync benchmark family (run after a deliberate perf change).
bench-baseline:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_DDP) > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp" > bench/baseline.json; \
	echo "wrote bench/baseline.json"

## bench-check fails when the gated family's modeled metrics regress >20%
## against bench/baseline.json (the CI perf gate).
bench-check:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_DDP) > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson -check bench/baseline.json < "$$tmp"

## bench-ci runs the full benchmark suite ONCE, writing the perf snapshot to
## bench-snapshot.json and gating that same run against the baseline — the
## uploaded artifact and the gate verdict always describe one execution.
bench-ci:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench . -benchtime=1x . > "$$tmp" || { cat "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/pgti-benchjson < "$$tmp" > bench-snapshot.json; \
	$(GO) run ./cmd/pgti-benchjson -check bench/baseline.json < "$$tmp"
