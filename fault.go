package pgti

import (
	"time"

	"pgti/internal/cluster"
	"pgti/internal/core"
	"pgti/internal/fault"
)

// Fault injection: deterministic infrastructure faults on the modeled
// cluster, with elastic recovery.
//
//	exp, _ := pgti.NewExperiment("Chickenpox-Hungary",
//		pgti.WithStrategy(pgti.StrategyDistIndex), pgti.WithWorkers(4),
//		pgti.WithFaultPlan(42,
//			pgti.FaultCrash(2, 40*time.Millisecond),
//			pgti.FaultStraggler(1, 3.0, 0, 80*time.Millisecond)))
//	report, err := exp.Fit(ctx)
//	// report.Recoveries == 1; the curve continues on the survivor grid.
//
// A fault plan is a pure function of its seed and options: every worker
// holds an identical copy and agrees — on the virtual clock, without any
// out-of-band channel — on exactly which fault fires when. Crashes remove a
// rank from the grid; the survivors detect the loss (a modeled detection
// timeout is charged to every surviving clock), roll back to the last
// epoch-boundary snapshot, rebuild the grid one worker smaller (a hybrid
// grid drops the dead rank's replica group, or re-splits its spatial shard
// across the survivors), charge the modeled re-plan and state re-fill, emit
// a typed RecoveryEvent, and continue. The post-recovery curve is bitwise
// identical to a fresh run started from that snapshot on the surviving
// grid. Stragglers and degraded links don't change membership — they
// inflate modeled compute and transfer charges inside their windows, which
// is what makes them visible to WithRepartition's measured load vector.
//
// Everything is deterministic: the same seed reproduces the same faults,
// recoveries, and modeled clocks run to run, and a plan that schedules
// nothing is contractually indistinguishable from no plan at all.

// FaultOption schedules one fault (or overrides one plan parameter) inside
// WithFaultPlan.
type FaultOption = fault.Option

// FaultCrash schedules rank's crash at virtual time at. Ranks number the
// grid the plan is armed on (hybrid grids: rank = replica*shards + shard).
func FaultCrash(rank int, at time.Duration) FaultOption {
	return fault.Crash(rank, at)
}

// FaultStraggler inflates rank's modeled compute charges by factor for
// virtual times in [from, to). Factor must be >= 1.
func FaultStraggler(rank int, factor float64, from, to time.Duration) FaultOption {
	return fault.Slow(rank, factor, from, to)
}

// FaultLinkDegrade inflates every modeled transfer cost by factor for
// virtual times in [from, to). Factor must be >= 1.
func FaultLinkDegrade(factor float64, from, to time.Duration) FaultOption {
	return fault.Degrade(factor, from, to)
}

// FaultDetection overrides the modeled failure-detection timeout charged to
// every surviving clock when a crash is detected (default 250ms).
func FaultDetection(d time.Duration) FaultOption {
	return fault.Detection(d)
}

// FaultHorizon bounds the virtual-time range the FaultRandom* options draw
// fault times from (default 1s). It must precede the options it governs.
func FaultHorizon(d time.Duration) FaultOption {
	return fault.Horizon(d)
}

// FaultRandomCrashes draws n crashes with distinct ranks in [0, world) and
// times in [0, horizon) from the plan's seeded RNG.
func FaultRandomCrashes(n, world int) FaultOption {
	return fault.RandomCrashes(n, world)
}

// FaultRandomStragglers draws n straggler windows of the given factor and
// duration, with ranks in [0, world) and starts in [0, horizon), from the
// plan's seeded RNG.
func FaultRandomStragglers(n, world int, factor float64, dur time.Duration) FaultOption {
	return fault.RandomStragglers(n, world, factor, dur)
}

// WithFaultPlan arms a deterministic fault schedule on the run: seed and
// options fully determine which workers crash, straggle, or suffer degraded
// links, and when, on the virtual clock. Requires a distributed strategy.
// Recovery is automatic (see the package comment above); the run's report
// counts recoveries and their modeled overhead in Recoveries/RecoveryTime.
func WithFaultPlan(seed uint64, opts ...FaultOption) Option {
	return func(c *expConfig) { c.core.Faults = fault.New(seed, opts...) }
}

// RecoveryEvent fires after each elastic recovery from a scheduled worker
// crash (re-exported from the engine; see WithFaultPlan and WithEvents).
type RecoveryEvent = core.RecoveryEvent

// WorkerLostError is the typed detection record of one scheduled worker
// crash. Fit wraps it in the returned error when the remaining schedule
// leaves the run unrecoverable (fewer than one survivor, or every survivor
// also scheduled to die); recovered losses surface as RecoveryEvents
// instead. errors.As-compatible.
type WorkerLostError = cluster.WorkerLostError
