package pgti

import (
	"math"
	"testing"
)

func TestDatasetsList(t *testing.T) {
	ds := Datasets()
	if len(ds) != 6 || ds[0] != "Chickenpox-Hungary" || ds[5] != "PeMS" {
		t.Fatalf("Datasets() = %v", ds)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if _, err := Run(Config{Dataset: "nope"}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestRunQuickstartShape(t *testing.T) {
	rep, err := Run(Config{
		Dataset:   "Chickenpox-Hungary",
		Strategy:  StrategyIndex,
		BatchSize: 4,
		Epochs:    2,
		Hidden:    8,
		K:         1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dataset != "Chickenpox-Hungary" || len(rep.Curve) != 2 {
		t.Fatalf("report malformed: %+v", rep)
	}
	if rep.OOM || rep.Curve.BestVal() <= 0 || math.IsNaN(rep.Curve.BestVal()) {
		t.Fatalf("bad result: %+v", rep)
	}
	if rep.RetainedDataBytes <= 0 || rep.PeakSystemBytes < rep.RetainedDataBytes {
		t.Fatalf("memory accounting wrong: retained %d peak %d", rep.RetainedDataBytes, rep.PeakSystemBytes)
	}
}

func TestRunMemoryCapProducesOOM(t *testing.T) {
	rep, err := Run(Config{
		Dataset:        "PeMS-BAY",
		Scale:          0.012,
		Strategy:       StrategyBaseline,
		BatchSize:      4,
		Epochs:         1,
		Hidden:         8,
		K:              1,
		Seed:           2,
		SystemMemoryGB: 0.001, // 1 MiB: below the standard pipeline's needs
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OOM || rep.OOMError == "" {
		t.Fatalf("expected OOM report, got %+v", rep)
	}
}

func TestRunDistributedFacade(t *testing.T) {
	rep, err := Run(Config{
		Dataset:   "PeMS-BAY",
		Scale:     0.012,
		Strategy:  StrategyDistIndex,
		Workers:   2,
		BatchSize: 4,
		Epochs:    1,
		Hidden:    8,
		K:         1,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 || rep.GlobalBatch != 8 || rep.GradSyncBytes == 0 {
		t.Fatalf("distributed report malformed: %+v", rep)
	}
	if rep.GradBuckets < 1 || rep.GradBucketBytes <= 0 {
		t.Fatalf("bucket accounting missing: %+v", rep)
	}
}

// TestRunCollectiveStackFacade drives the public collective-stack knobs:
// hierarchical AllReduce over a 2x2 topology with fp16 buckets and the
// bucket-size autotuner, end to end through pgti.Run.
func TestRunCollectiveStackFacade(t *testing.T) {
	rep, err := Run(Config{
		Dataset:      "PeMS-BAY",
		Scale:        0.012,
		Strategy:     StrategyDistIndex,
		Workers:      4,
		BatchSize:    2,
		Epochs:       1,
		Hidden:       8,
		K:            1,
		Seed:         3,
		GradAlgo:     GradAlgoHierarchical,
		Topology:     Topology{Nodes: 2, GPUsPerNode: 2},
		GradFP16:     true,
		GradAutoTune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommBytesSaved == 0 {
		t.Fatal("fp16 run must report saved communication bytes")
	}
	if rep.GradBucketBytes <= 0 || rep.GradBuckets < 1 {
		t.Fatalf("autotuned bucket accounting missing: buckets=%d bytes=%d", rep.GradBuckets, rep.GradBucketBytes)
	}
	if rep.GradSyncBytes == 0 || rep.VirtualTime <= 0 {
		t.Fatalf("collective-stack report malformed: %+v", rep)
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatBytes(1<<30) != "1.00 GiB" {
		t.Fatalf("FormatBytes: %s", FormatBytes(1<<30))
	}
}
