// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus ablation micro-benchmarks for the
// design choices DESIGN.md calls out: view-based vs copy-based snapshot
// assembly, ring vs naive AllReduce, index vs standard preprocessing, the
// three shuffling strategies, and the parallel sparse/dense kernels.
package pgti

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"pgti/internal/batching"
	"pgti/internal/cluster"
	"pgti/internal/core"
	"pgti/internal/dataset"
	"pgti/internal/ddp"
	"pgti/internal/experiments"
	"pgti/internal/fault"
	"pgti/internal/graph"
	"pgti/internal/metrics"
	"pgti/internal/nn"
	"pgti/internal/parallel"
	"pgti/internal/perfmodel"
	"pgti/internal/shard"
	"pgti/internal/sparse"
	"pgti/internal/stream"
	"pgti/internal/tensor"

	"pgti/internal/autograd"
)

// benchOpts are quiet, quick experiment options for benchmarking.
var benchOpts = experiments.Options{Out: io.Discard, Quick: true, Seed: 42}

// runExperiment benches one full experiment regeneration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure -----------------------------------

func BenchmarkTable1DatasetSizes(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkTable2CaseStudy(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkTable3BaseVsIndex(b *testing.B)        { runExperiment(b, "table3") }
func BenchmarkTable4GPUIndex(b *testing.B)           { runExperiment(b, "table4") }
func BenchmarkTable5Shuffling(b *testing.B)          { runExperiment(b, "table5") }
func BenchmarkTable6A3TGCN(b *testing.B)             { runExperiment(b, "table6") }
func BenchmarkFig2MemoryCurves(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkFig3DataGrowth(b *testing.B)           { runExperiment(b, "fig3") }
func BenchmarkFig5AccuracyCurves(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6PeMSMemory(b *testing.B)           { runExperiment(b, "fig6") }
func BenchmarkFig7ScalingStudy(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkFig8AccuracyVsGPUs(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFig9GeneralizedDistIndex(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10STLLMScaling(b *testing.B)        { runExperiment(b, "fig10") }

// --- ablation: snapshot assembly, view vs copy ------------------------------

func benchSignal(b *testing.B, entries, nodes, features int) *tensor.Tensor {
	b.Helper()
	return tensor.Randn(tensor.NewRNG(1), entries, nodes, features)
}

// BenchmarkSnapshotView measures index-batching's zero-copy snapshot
// reconstruction (the paper's Fig. 4 operation).
func BenchmarkSnapshotView(b *testing.B) {
	idx, err := batching.NewIndexDataset(benchSignal(b, 2000, 200, 2), 12, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := idx.Snapshot(i % idx.NumSnapshots())
		_ = x
		_ = y
	}
}

// BenchmarkSnapshotCopy measures the copy-based alternative (what standard
// batching pays per snapshot during SWA).
func BenchmarkSnapshotCopy(b *testing.B) {
	data := benchSignal(b, 2000, 200, 2)
	h := 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % (2000 - 2*h + 1)
		x := data.Slice(0, s, s+h).Clone()
		y := data.Slice(0, s+h, s+2*h).Clone()
		_ = x
		_ = y
	}
}

// BenchmarkAssembleBatch measures batched collation from views with buffer
// reuse (the steady-state training path).
func BenchmarkAssembleBatch(b *testing.B) {
	idx, err := batching.NewIndexDataset(benchSignal(b, 2000, 200, 2), 12, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	indices := make([]int, 32)
	for i := range indices {
		indices[i] = i * 7 % idx.NumSnapshots()
	}
	var buf batching.BatchBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := idx.AssembleBatch(indices, &buf)
		_ = x
		_ = y
	}
}

// --- ablation: preprocessing pipelines --------------------------------------

func BenchmarkStandardPreprocess(b *testing.B) {
	data := benchSignal(b, 800, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batching.StandardPreprocess(data.Clone(), 12, 0.7, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexPreprocess(b *testing.B) {
	data := benchSignal(b, 800, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batching.NewIndexDataset(data.Clone(), 12, 0.7, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: shuffling strategies -----------------------------------------

func benchIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func BenchmarkGlobalShuffler(b *testing.B) {
	s := batching.NewGlobalShuffler(benchIndices(50000), 64, 8, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EpochBatches(i)
	}
}

func BenchmarkLocalShuffler(b *testing.B) {
	s := batching.NewLocalShuffler(benchIndices(50000), 64, 8, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EpochBatches(i)
	}
}

func BenchmarkBatchShuffler(b *testing.B) {
	s := batching.NewBatchShuffler(benchIndices(50000), 64, 8, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EpochBatches(i)
	}
}

// --- ablation: AllReduce algorithms ------------------------------------------

func benchAllReduce(b *testing.B, workers, vecLen int, naive bool) {
	b.Helper()
	clu, err := cluster.New(cluster.Config{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := clu.Run(func(w *cluster.Worker) error {
			vec := make([]float64, vecLen)
			for j := range vec {
				vec[j] = float64(w.Rank() + j)
			}
			if naive {
				w.NaiveAllReduceMean(vec)
			} else {
				w.RingAllReduceMean(vec)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingAllReduce4x64k(b *testing.B)  { benchAllReduce(b, 4, 65536, false) }
func BenchmarkNaiveAllReduce4x64k(b *testing.B) { benchAllReduce(b, 4, 65536, true) }

// --- micro: numeric kernels ---------------------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 128, 128)
	y := tensor.Randn(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// Cache-blocked vs naive MatMul at a size whose b matrix (1024x1024, 8 MiB)
// overflows L2: the tiled kernel reuses each [64,256] panel of b across the
// whole row block instead of streaming all of b per output row. The win is
// modest — the scalar Go kernel is FMA-bound, not bandwidth-bound — but the
// blocking keeps large products from thrashing once k*n outgrows the cache.
// Serial width isolates the cache effect from the pool.
func benchMatMul1024(b *testing.B, mul func(a, b *tensor.Tensor) *tensor.Tensor) {
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 1024, 1024)
	y := tensor.Randn(rng, 1024, 1024)
	benchWithWorkers(b, 1, func() { mul(x, y) })
}

func BenchmarkMatMulNaiveSerial1024(b *testing.B) { benchMatMul1024(b, tensor.MatMulNaive) }
func BenchmarkMatMulTiledSerial1024(b *testing.B) { benchMatMul1024(b, tensor.MatMul) }

func BenchmarkSpMM(b *testing.B) {
	g, err := graph.RoadNetwork(1, 500, 8)
	if err != nil {
		b.Fatal(err)
	}
	fwd, _ := g.TransitionMatrices()
	x := tensor.Randn(tensor.NewRNG(3), 500, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd.SpMM(x)
	}
}

func BenchmarkDCGRUStepForward(b *testing.B) {
	g, err := graph.RoadNetwork(1, 100, 8)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	cell := nn.NewDCGRUCell(tensor.NewRNG(4), "c", []*sparse.CSR{fwd, bwd}, 2, 2, 32)
	x := autograd.Constant(tensor.Randn(tensor.NewRNG(5), 8, 100, 2))
	h := cell.InitState(8, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.Step(x, h)
	}
}

func BenchmarkTrainingStep(b *testing.B) {
	g, err := graph.RoadNetwork(1, 50, 6)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	model := nn.NewPGTDCRNN(tensor.NewRNG(6), []*sparse.CSR{fwd, bwd}, 2, 2, 16, 12)
	opt := nn.NewAdam(model, 0.01)
	rng := tensor.NewRNG(7)
	x := tensor.Randn(rng, 8, 12, 50, 2)
	y := tensor.Randn(rng, 8, 12, 50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := autograd.MAELoss(model.Forward(autograd.Constant(x)), y)
		if err := autograd.Backward(loss); err != nil {
			b.Fatal(err)
		}
		opt.Step()
	}
}

// --- micro: cost-model throughput ---------------------------------------------

func BenchmarkPerfModelFullSweep(b *testing.B) {
	c := perfmodel.NewDeterministic()
	dims := perfmodel.PGTDCRNNDims(dataset.PeMS.Nodes, dataset.PeMS.Nodes*9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 1; p <= 128; p *= 2 {
			c.DistIndexRun(dims, dataset.PeMS, 32, p, 30)
			c.BaselineDDPRun(dims, dataset.PeMS, 32, p, 30)
		}
	}
}

// --- micro: parallel runtime vs serial kernels --------------------------------

// benchWithWorkers runs body b.N times with the parallel pool pinned to the
// given width (0 = GOMAXPROCS), restoring the previous width afterwards.
func benchWithWorkers(b *testing.B, workers int, body func()) {
	b.Helper()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body()
	}
}

// Element-wise binary op on a large tensor (4M elements).
func benchAdd(b *testing.B, workers int) {
	rng := tensor.NewRNG(11)
	x := tensor.Randn(rng, 2048, 2048)
	y := tensor.Randn(rng, 2048, 2048)
	benchWithWorkers(b, workers, func() { tensor.Add(x, y) })
}

func BenchmarkElementwiseAddSerial(b *testing.B)   { benchAdd(b, 1) }
func BenchmarkElementwiseAddParallel(b *testing.B) { benchAdd(b, 0) }

// Transcendental Apply (sigmoid) on a large tensor: compute-bound per element.
func benchSigmoid(b *testing.B, workers int) {
	x := tensor.Randn(tensor.NewRNG(12), 2048, 1024)
	benchWithWorkers(b, workers, func() { x.Sigmoid() })
}

func BenchmarkSigmoidSerial(b *testing.B)   { benchSigmoid(b, 1) }
func BenchmarkSigmoidParallel(b *testing.B) { benchSigmoid(b, 0) }

// Large SpMM: PeMS-scale sensor graph against a wide feature matrix.
func benchSpMMLarge(b *testing.B, workers int) {
	g, err := graph.RoadNetwork(13, 4000, 10)
	if err != nil {
		b.Fatal(err)
	}
	fwd, _ := g.TransitionMatrices()
	x := tensor.Randn(tensor.NewRNG(14), 4000, 128)
	benchWithWorkers(b, workers, func() { fwd.SpMM(x) })
}

func BenchmarkSpMMLargeSerial(b *testing.B)   { benchSpMMLarge(b, 1) }
func BenchmarkSpMMLargeParallel(b *testing.B) { benchSpMMLarge(b, 0) }

// Batched matmul as used by attention: [64, 128, 64] x [64, 64, 128].
func benchBMM(b *testing.B, workers int) {
	rng := tensor.NewRNG(15)
	x := tensor.Randn(rng, 64, 128, 64)
	y := tensor.Randn(rng, 64, 64, 128)
	benchWithWorkers(b, workers, func() { tensor.BMM(x, y) })
}

func BenchmarkBMMSerial(b *testing.B)   { benchBMM(b, 1) }
func BenchmarkBMMParallel(b *testing.B) { benchBMM(b, 0) }

// Index-gather batch assembly (the per-step data path of index-batching).
func benchAssemble(b *testing.B, workers int) {
	idx, err := batching.NewIndexDataset(benchSignal(b, 4000, 400, 2), 12, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	indices := make([]int, 64)
	for i := range indices {
		indices[i] = i * 13 % idx.NumSnapshots()
	}
	var buf batching.BatchBuffer
	benchWithWorkers(b, workers, func() { idx.AssembleBatch(indices, &buf) })
}

func BenchmarkAssembleBatchSerial(b *testing.B)   { benchAssemble(b, 1) }
func BenchmarkAssembleBatchParallel(b *testing.B) { benchAssemble(b, 0) }

// --- ablation: DDP gradient sync schedules ------------------------------------

// benchDDPSync trains one epoch at 8 workers on a bandwidth-constrained
// fabric and reports the modeled epoch virtual time and exposed
// communication, comparing the collective-stack configurations: flatten
// baseline, bucketed overlapping ring, hierarchical (2 nodes x 4 GPUs),
// fp16-compressed buckets, and the bucket-size autotuner. The fabric is
// slow enough that the modeled metrics are communication-dominated and
// stable, which is what the CI regression gate (make bench-check) compares
// against bench/baseline.json.
func benchDDPSync(b *testing.B, mutate func(*ddp.Config)) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64) nn.SeqModel {
		return nn.NewPGTDCRNN(tensor.NewRNG(seed), supports, 1, 1, 16, 3)
	}
	paramBytes := nn.ParameterBytes(factory(1))
	cfg := ddp.Config{
		Workers: 8, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		BucketBytes: paramBytes / 4,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
	mutate(&cfg)
	var res *ddp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = ddp.Train(data, split, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.GradSyncBytes)/1024, "wire-KiB/epoch")
	b.ReportMetric(float64(res.BucketBytes)/1024, "bucket-KiB")
}

func BenchmarkDDPBucketedOverlap8(b *testing.B) { benchDDPSync(b, func(*ddp.Config) {}) }
func BenchmarkDDPFlatten8(b *testing.B) {
	benchDDPSync(b, func(c *ddp.Config) { c.Algo = ddp.GradAlgoFlat })
}
func BenchmarkDDPHierarchical8(b *testing.B) {
	benchDDPSync(b, func(c *ddp.Config) {
		c.Algo = ddp.GradAlgoHierarchical
		c.Topology = cluster.Topology{Nodes: 2, GPUsPerNode: 4}
	})
}
func BenchmarkDDPFP16Ring8(b *testing.B) {
	benchDDPSync(b, func(c *ddp.Config) { c.FP16 = true })
}
func BenchmarkDDPFP16Hierarchical8(b *testing.B) {
	benchDDPSync(b, func(c *ddp.Config) {
		c.Algo = ddp.GradAlgoHierarchical
		c.Topology = cluster.Topology{Nodes: 2, GPUsPerNode: 4}
		c.FP16 = true
	})
}
func BenchmarkDDPAutotune8(b *testing.B) {
	benchDDPSync(b, func(c *ddp.Config) {
		c.BucketBytes = 0
		c.AutoTuneBuckets = true
	})
}

// --- gated: spatial sharding (hybrid spatial x data grids) --------------------

// benchShard trains one epoch on a Shards x Replicas grid over a
// bandwidth-constrained fabric with modeled compute, reporting the modeled
// epoch time, the exposed gradient communication, and the halo-exchange
// traffic/cost — all deterministic virtual-clock metrics, gated by `make
// bench-check` alongside the DDP family.
func benchShard(b *testing.B, shards, replicas int) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64, props []nn.Propagator) nn.SeqModel {
		return nn.NewPGTDCRNNOn(tensor.NewRNG(seed), props, 1, 1, 16, 3)
	}
	cfg := shard.Config{
		Shards: shards, Replicas: replicas, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
	var res *shard.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = shard.Train(data, split, g, supports, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.HaloTime.Microseconds()), "halo-µs/epoch")
	b.ReportMetric(float64(res.HaloBytes)/1024, "halo-KiB/epoch")
	b.ReportMetric(float64(res.EdgeCut), "edge-cut")
}

func BenchmarkShardSpatial4(b *testing.B)  { benchShard(b, 4, 1) }
func BenchmarkShardHybrid2x2(b *testing.B) { benchShard(b, 2, 2) }
func BenchmarkShardHybrid2x4(b *testing.B) { benchShard(b, 2, 4) }

// --- gated: communication-overlap ablations on the sharded hot path ----------

// benchShardOverlap isolates the two overlap mechanisms on the hybrid grid:
// interior-first halo exchange vs the blocking gather, and the bucketed
// two-stage gradient sync vs the flatten baseline — same fabric, modeled
// compute and bucket cap throughout, so the virt-µs deltas are purely the
// schedule. The halo-hidden / comm-hidden metrics expose how much of the
// identical communication volume each schedule moved under compute.
func benchShardOverlap(b *testing.B, shards, replicas int, halo shard.HaloSyncMode, sync ddp.SyncMode) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64, props []nn.Propagator) nn.SeqModel {
		return nn.NewPGTDCRNNOn(tensor.NewRNG(seed), props, 1, 1, 16, 3)
	}
	paramBytes := nn.ParameterBytes(factory(1, nn.WrapSupports(supports)))
	cfg := shard.Config{
		Shards: shards, Replicas: replicas, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		HaloSync: halo, Sync: sync, BucketBytes: paramBytes / 4,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
	var res *shard.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = shard.Train(data, split, g, supports, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.HaloTime.Microseconds()), "halo-µs/epoch")
	b.ReportMetric(float64(res.HaloHiddenTime.Microseconds()), "halo-hidden-µs")
	b.ReportMetric(float64(res.CommHiddenTime.Microseconds()), "comm-hidden-µs")
}

func BenchmarkShardOverlapBlocking2x2(b *testing.B) {
	benchShardOverlap(b, 2, 2, shard.HaloSyncBlocking, ddp.SyncFlatten)
}
func BenchmarkShardOverlapHalo2x2(b *testing.B) {
	benchShardOverlap(b, 2, 2, shard.HaloSyncOverlap, ddp.SyncFlatten)
}
func BenchmarkShardOverlapBucketed2x2(b *testing.B) {
	benchShardOverlap(b, 2, 2, shard.HaloSyncBlocking, ddp.SyncBucketedOverlap)
}
func BenchmarkShardOverlapFull2x2(b *testing.B) {
	benchShardOverlap(b, 2, 2, shard.HaloSyncOverlap, ddp.SyncBucketedOverlap)
}
func BenchmarkShardOverlapBlocking2x4(b *testing.B) {
	benchShardOverlap(b, 2, 4, shard.HaloSyncBlocking, ddp.SyncFlatten)
}
func BenchmarkShardOverlapHalo2x4(b *testing.B) {
	benchShardOverlap(b, 2, 4, shard.HaloSyncOverlap, ddp.SyncFlatten)
}
func BenchmarkShardOverlapBucketed2x4(b *testing.B) {
	benchShardOverlap(b, 2, 4, shard.HaloSyncBlocking, ddp.SyncBucketedOverlap)
}
func BenchmarkShardOverlapFull2x4(b *testing.B) {
	benchShardOverlap(b, 2, 4, shard.HaloSyncOverlap, ddp.SyncBucketedOverlap)
}

// --- gated: staleness-aware prefetch pipeline on the hybrid grid --------------

// benchPipeline layers the training-pipeline mechanisms onto the hybrid
// grid of benchShard (same fabric, modeled compute, default overlapped
// schedules): a modeled per-batch collation cost paid serially or hidden by
// the double-buffered prefetcher, the two-channel comm timeline under a
// node topology that puts halo traffic on the intra-node channel while
// gradient buckets ride the inter-node one, and the bounded-staleness
// gradient mode whose quality cost the val-MAE metric tracks against K=0.
func benchPipeline(b *testing.B, shards, replicas int, prefetch, twoChannel bool, staleness int) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64, props []nn.Propagator) nn.SeqModel {
		return nn.NewPGTDCRNNOn(tensor.NewRNG(seed), props, 1, 1, 16, 3)
	}
	cfg := shard.Config{
		Shards: shards, Replicas: replicas, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
		// Paper-scale proxy: on the full sensor graphs collation is a
		// visible slice of the step, which the tiny bench graph would hide.
		AssembleCost: func(int) time.Duration { return 500 * time.Microsecond },
		Prefetch:     prefetch,
		Staleness:    staleness,
	}
	if twoChannel {
		// One simulated node per replica group: halo exchange stays
		// intra-node, the two-stage gradient sync crosses nodes, and the
		// two channels pipeline independently.
		cfg.Topology = cluster.Topology{Nodes: replicas, GPUsPerNode: shards}
	}
	var res *shard.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = shard.Train(data, split, g, supports, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.HaloHiddenTime.Microseconds()), "halo-hidden-µs")
	b.ReportMetric(float64(res.CommHiddenTime.Microseconds()), "comm-hidden-µs")
	b.ReportMetric(res.Curve[len(res.Curve)-1].ValMAE*1000, "val-MAE-milli")
}

func BenchmarkPipelineSerial2x2(b *testing.B)     { benchPipeline(b, 2, 2, false, false, 0) }
func BenchmarkPipelinePrefetch2x2(b *testing.B)   { benchPipeline(b, 2, 2, true, false, 0) }
func BenchmarkPipelineTwoChannel2x2(b *testing.B) { benchPipeline(b, 2, 2, true, true, 0) }
func BenchmarkPipelineSerial2x4(b *testing.B)     { benchPipeline(b, 2, 4, false, false, 0) }
func BenchmarkPipelinePrefetch2x4(b *testing.B)   { benchPipeline(b, 2, 4, true, false, 0) }
func BenchmarkPipelineTwoChannel2x4(b *testing.B) { benchPipeline(b, 2, 4, true, true, 0) }

// Staleness-vs-quality curve on the fully pipelined 2x2 grid: K trades
// modeled epoch time against the val-MAE drift of delayed, compensated
// updates (K=0 is BenchmarkPipelineTwoChannel2x2).
func BenchmarkPipelineStaleK1_2x2(b *testing.B) { benchPipeline(b, 2, 2, true, true, 1) }
func BenchmarkPipelineStaleK4_2x2(b *testing.B) { benchPipeline(b, 2, 2, true, true, 4) }

// --- gated: index-batching DDP strategies -------------------------------------

// benchIndexBatch runs one modeled epoch of a distributed index-batching
// strategy at 4 workers (mirroring benchDDPSync's fabric), so the
// strategy-level virtual-time metrics join the regression gate.
func benchIndexBatch(b *testing.B, store bool) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64) nn.SeqModel {
		return nn.NewPGTDCRNN(tensor.NewRNG(seed), supports, 1, 1, 16, 3)
	}
	cfg := ddp.Config{
		Workers: 4, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
	if store {
		st, err := batching.NewPartitionStore(data, cfg.Workers)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Store = st
		cfg.Sampler = ddp.BatchShuffle
	}
	var res *ddp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = ddp.Train(data, split, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.GradSyncBytes)/1024, "wire-KiB/epoch")
}

func BenchmarkIndexBatchDistIndex4(b *testing.B)    { benchIndexBatch(b, false) }
func BenchmarkIndexBatchGenDistIndex4(b *testing.B) { benchIndexBatch(b, true) }

// --- gated: event-stream hook overhead ----------------------------------------

// benchEventStream runs one modeled epoch at 4 workers with or without the
// per-epoch/autotune event hooks attached, reporting the same deterministic
// virtual-clock metrics as the DDP family. Gating both variants pins the
// hook path to the hookless loop: events must not perturb the modeled
// timeline, so a regression in either one (or a gap between them) fails
// `make bench-check`.
func benchEventStream(b *testing.B, hook bool) {
	g, err := graph.RoadNetwork(16, 24, 4)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := g.TransitionMatrices()
	supports := []*sparse.CSR{fwd, bwd}
	raw := tensor.Randn(tensor.NewRNG(17), 160, 24, 1)
	data, err := batching.NewIndexDataset(raw, 3, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	split := batching.MakeSplit(data.NumSnapshots(), 0.7, 0.1)
	factory := func(seed uint64) nn.SeqModel {
		return nn.NewPGTDCRNN(tensor.NewRNG(seed), supports, 1, 1, 16, 3)
	}
	cfg := ddp.Config{
		Workers: 4, BatchSize: 2, Epochs: 1, LR: 0.01, Seed: 1,
		Net:         cluster.NetworkModel{Bandwidth: 1e7, Latency: 2 * time.Microsecond, DispatchOverhead: time.Millisecond},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
	events := 0
	if hook {
		cfg.OnEpoch = func(metrics.EpochRecord) { events++ }
		cfg.OnAutotuneLock = func(int64) { events++ }
	}
	var res *ddp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events = 0
		res, err = ddp.Train(data, split, factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if hook && events == 0 {
		b.Fatal("epoch hook never fired")
	}
	b.ReportMetric(float64(res.VirtualTime.Microseconds()), "virt-µs/epoch")
	b.ReportMetric(float64(res.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(res.GradSyncBytes)/1024, "wire-KiB/epoch")
}

func BenchmarkEventStreamHooked4(b *testing.B)   { benchEventStream(b, true) }
func BenchmarkEventStreamHookless4(b *testing.B) { benchEventStream(b, false) }

// --- micro: row-wise nn kernels (softmax / layer norm) on the pool ------------

func benchSoftmax(b *testing.B, workers int) {
	x := tensor.Randn(tensor.NewRNG(18), 512, 64, 64)
	v := autograd.Constant(x)
	benchWithWorkers(b, workers, func() { autograd.Softmax(v) })
}

func BenchmarkSoftmaxSerial(b *testing.B)   { benchSoftmax(b, 1) }
func BenchmarkSoftmaxParallel(b *testing.B) { benchSoftmax(b, 0) }

func benchLayerNorm(b *testing.B, workers int) {
	d := 128
	x := autograd.NewVariable(tensor.Randn(tensor.NewRNG(19), 256, 128, d))
	gamma := autograd.NewVariable(tensor.Ones(d))
	beta := autograd.NewVariable(tensor.New(d))
	benchWithWorkers(b, workers, func() {
		out := autograd.LayerNorm(x, gamma, beta, 1e-5)
		if err := autograd.Backward(autograd.SumAll(out)); err != nil {
			b.Fatal(err)
		}
		x.ZeroGrad()
		gamma.ZeroGrad()
		beta.ZeroGrad()
	})
}

func BenchmarkLayerNormSerial(b *testing.B)   { benchLayerNorm(b, 1) }
func BenchmarkLayerNormParallel(b *testing.B) { benchLayerNorm(b, 0) }

// --- gated: serving tier (coalescing queue, replica pool, swap) ---------------

// The serve family drives deterministic serving sessions under an explicit
// cost model (2ms launch + 250µs/window — the launch is the term coalescing
// amortizes) and a modeled open-loop arrival process pinned at each
// configuration's modeled capacity, then reports the server's virtual-clock
// accounting. Barriered caller waves keep every batch full, and the arrival
// stamps come from admission order, so the modeled p50/p99/QPS are exact,
// reproducible numbers on any host: Serial prices one-request dispatch
// (capacity 444 QPS), Coalesce8 must clear >=2x that (it models ~4.3x),
// Replicas2x8 doubles Coalesce8 over a two-replica pool, and SwapUnderLoad
// pins that atomic weight swaps leave the modeled timeline untouched.

var (
	benchServeOnce sync.Once
	benchServeExp  *Experiment
	benchServeWin  Window
	benchServeErr  error
)

// benchServeSetup fits the tiny serving experiment once per process.
func benchServeSetup(b *testing.B) (*Experiment, Window) {
	b.Helper()
	benchServeOnce.Do(func() {
		exp, err := NewExperiment("PeMS-BAY", tinyOpts(StrategyIndex, 1)...)
		if err != nil {
			benchServeErr = err
			return
		}
		if _, err := exp.Fit(context.Background()); err != nil {
			benchServeErr = err
			return
		}
		pred, err := exp.Predictor()
		if err != nil {
			benchServeErr = err
			return
		}
		vals := make([]float64, pred.Horizon()*pred.Nodes()*pred.Features())
		for i := range vals {
			vals[i] = 55 + float64(i%9)
		}
		benchServeExp, benchServeWin = exp, Window{Values: vals}
	})
	if benchServeErr != nil {
		b.Fatal(benchServeErr)
	}
	return benchServeExp, benchServeWin
}

// benchServeCost is the explicit modeled forward cost: a fixed launch
// (weights streamed once per batch) plus a per-window term.
func benchServeCost(batch int) time.Duration {
	return 2*time.Millisecond + time.Duration(batch)*250*time.Microsecond
}

// runServeSession drives callers goroutines through rounds closed-loop
// requests each (plus swaps mid-load) and returns the final modeled stats.
func runServeSession(b *testing.B, replicas, maxBatch, callers, rounds, swaps int, interarrival time.Duration) ServeStats {
	b.Helper()
	exp, w := benchServeSetup(b)
	srv, err := NewServer(exp,
		WithReplicas(replicas),
		WithMaxBatch(maxBatch),
		WithBatchWindow(time.Second),
		WithQueueDepth(2*callers),
		WithCostModel(benchServeCost),
		WithArrivalProcess(interarrival),
	)
	if err != nil {
		b.Fatal(err)
	}
	// Swaps run concurrently with the request waves; they leave the
	// modeled timeline untouched, so the stats stay deterministic.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < swaps; i++ {
			if err := srv.Swap(exp); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	// Barriered waves over persistent workers: every round issues exactly
	// callers requests, so each wave splits into full MaxBatch batches and
	// the count trigger (never the window timer) dispatches every one.
	// Workers are spawned once — waking a parked goroutine is orders of
	// magnitude faster than the real forward, so a whole wave enqueues
	// before its first batch completes and the modeled arrivals coincide.
	begin := make(chan struct{})
	results := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			for range begin {
				_, err := srv.Predict(context.Background(), w)
				results <- err
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		for g := 0; g < callers; g++ {
			begin <- struct{}{}
		}
		for g := 0; g < callers; g++ {
			if err := <-results; err != nil {
				b.Error(err)
			}
		}
	}
	close(begin)
	<-swapDone
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	return srv.Stats()
}

func benchServe(b *testing.B, replicas, maxBatch, callers, swaps int, interarrival time.Duration) {
	const rounds = 16
	benchServeSetup(b) // fit outside the timer
	var st ServeStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = runServeSession(b, replicas, maxBatch, callers, rounds, swaps, interarrival)
	}
	if want := int64(callers * rounds); st.Completed != want {
		b.Fatalf("completed %d, want %d", st.Completed, want)
	}
	b.ReportMetric(st.QPS, "qps")
	b.ReportMetric(float64(st.P50.Microseconds()), "p50-µs")
	b.ReportMetric(float64(st.P99.Microseconds()), "p99-µs")
	b.ReportMetric(float64(st.Virtual.Microseconds()), "virt-µs")
}

// Interarrival pins the offered load at each configuration's modeled
// capacity: Serial serves cost(1)=2.25ms per request, a coalescing replica
// serves 8 per cost(8)=4ms (500µs), and two replicas serve twice that.
func BenchmarkServeSerial(b *testing.B)        { benchServe(b, 1, 1, 1, 0, 2250*time.Microsecond) }
func BenchmarkServeCoalesce8(b *testing.B)     { benchServe(b, 1, 8, 8, 0, 500*time.Microsecond) }
func BenchmarkServeReplicas2x8(b *testing.B)   { benchServe(b, 2, 8, 16, 0, 250*time.Microsecond) }
func BenchmarkServeSwapUnderLoad(b *testing.B) { benchServe(b, 1, 8, 8, 6, 500*time.Microsecond) }

// --- gated: streaming ingestion + rolling retrain ----------------------------

// benchStreamMeta is a synthetic fabric-scale dataset for the streaming
// benches — 24 nodes, 160 entries, horizon 3, matching the sharded-fabric
// benches above — streamed through the bounded ingestion ring instead of
// materialized up front.
var benchStreamMeta = dataset.Meta{
	Name: "StreamBench", Domain: dataset.Traffic,
	Nodes: 24, Entries: 160, RawFeatures: 1,
	Horizon: 3, PeriodSteps: 48, NeighborsK: 4,
}

// benchStreamBase is the 2 shards x 2 replicas hybrid-grid configuration the
// streaming benches retrain under: modeled compute and collation costs so
// every reported clock is virtual.
func benchStreamBase(epochs int) core.Config {
	return core.Config{
		Model: core.ModelPGTDCRNN, Strategy: core.DistIndex,
		Workers: 2, Spatial: shard.Spatial{Shards: 2},
		BatchSize: 2, Epochs: epochs, LR: 0.01, Hidden: 16, K: 1, Seed: 1,
		Prefetch:     true,
		ComputeCost:  func(int) time.Duration { return 2 * time.Millisecond },
		AssembleCost: func(int) time.Duration { return 500 * time.Microsecond },
	}
}

// benchStreamRun opens a fresh stream over benchStreamMeta and drives the
// configured retrain rounds through it, returning the last round's report.
func benchStreamRun(b *testing.B, base core.Config, window, advance, rounds int) *core.Report {
	b.Helper()
	src, err := stream.NewSource(benchStreamMeta, base.Seed, stream.Options{Window: benchStreamMeta.Entries})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	rt, err := stream.NewRetrainer(src, stream.RetrainConfig{
		Base: base, Window: window, Advance: advance, Rounds: rounds,
	})
	if err != nil {
		b.Fatal(err)
	}
	done, err := rt.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return done[len(done)-1].Report
}

// loadSpread is the max/min ratio of the per-shard structural compute
// shares — 1.0 is perfectly balanced.
func loadSpread(loads []float64) float64 {
	lo, hi := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi / lo
}

// BenchmarkStreamReplay2x2 replays the full stream in one window through the
// rolling retrainer on the hybrid grid — the streaming contract's unit of
// cost: ingest the ring, materialize, fit under modeled costs. The virtual
// clock is the gated metric; it must track the equivalent offline fit.
func BenchmarkStreamReplay2x2(b *testing.B) {
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = benchStreamRun(b, benchStreamBase(1), benchStreamMeta.Entries, 0, 1)
	}
	b.ReportMetric(float64(rep.VirtualTime.Microseconds()), "virt-µs/round")
	b.ReportMetric(float64(rep.CommTime.Microseconds()), "exposed-comm-µs")
	b.ReportMetric(float64(rep.HaloTime.Microseconds()), "halo-µs/round")
}

// BenchmarkStreamRepartition2x2 injects a 9:1 compute skew into one shard of
// a count-balanced partition (StaticPartition pins the imbalanced start) and
// lets mid-run elastic chunk migration correct it while the window streams
// in. Gated metrics: the modeled round time, the residual per-shard load
// spread against the static run's spread (the reduction the subsystem buys),
// and the migration count.
func BenchmarkStreamRepartition2x2(b *testing.B) {
	// Weight shard 0 of the count-based plan 9x, reproducing the partition
	// the engine will build from the same generated graph.
	ds, err := dataset.Generate(benchStreamMeta, 1)
	if err != nil {
		b.Fatal(err)
	}
	fwd, bwd := ds.Graph.TransitionMatrices()
	plan, err := shard.BuildPlan(ds.Graph, []*sparse.CSR{fwd, bwd}, 2)
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, ds.Graph.N)
	for i := range weights {
		weights[i] = 1
	}
	for _, u := range plan.Parts[0].Own {
		weights[u] = 9
	}
	skewed := benchStreamBase(3)
	skewed.NodeWeights = weights
	skewed.StaticPartition = true

	static := benchStreamRun(b, skewed, benchStreamMeta.Entries, 0, 1)

	elastic := skewed
	elastic.Repartition = shard.Repartition{ChunkSize: 4, Threshold: 2}
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = benchStreamRun(b, elastic, benchStreamMeta.Entries, 0, 1)
	}
	if rep.Repartitions == 0 {
		b.Fatal("injected skew never triggered a repartition")
	}
	b.ReportMetric(float64(rep.VirtualTime.Microseconds()), "virt-µs/round")
	b.ReportMetric(loadSpread(rep.ShardLoads), "load-spread")
	b.ReportMetric(loadSpread(static.ShardLoads), "static-spread")
	b.ReportMetric(float64(rep.Repartitions), "repartitions")
}

// --- gated: fault injection + elastic recovery -------------------------------

// benchFaultCfg is the fully-modeled 2 replicas x 2 shards hybrid grid the
// fault benches run under: with both cost models pinned, the recovery
// overhead is an exact virtual-clock quantity, not a host measurement.
func benchFaultCfg() core.Config {
	meta, _ := dataset.ByName("Chickenpox-Hungary")
	return core.Config{
		Meta: meta, Scale: 0.4,
		Model: core.ModelPGTDCRNN, Strategy: core.DistIndex,
		Workers: 2, Spatial: shard.Spatial{Shards: 2},
		BatchSize: 4, Epochs: 2, Hidden: 8, K: 1, Seed: 3,
		AssembleCost: func(items int) time.Duration {
			return time.Duration(items) * 25 * time.Microsecond
		},
		ComputeCost: func(int) time.Duration { return 2 * time.Millisecond },
	}
}

// BenchmarkFaultRecovery2x2 crashes one rank of the hybrid grid mid-epoch and
// prices the full recovery path — detection, snapshot rollback, grid
// re-plan, state re-fill, and the slower surviving grid. Gated metrics: the
// run's modeled clock, the booked recovery charge, and the total modeled
// overhead against the fault-free run.
func BenchmarkFaultRecovery2x2(b *testing.B) {
	clean, err := core.Run(benchFaultCfg())
	if err != nil {
		b.Fatal(err)
	}
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchFaultCfg()
		cfg.Faults = fault.New(11, fault.Crash(3, 8*time.Millisecond))
		rep, err = core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.Recoveries != 1 {
		b.Fatalf("recoveries = %d, want 1", rep.Recoveries)
	}
	b.ReportMetric(float64(rep.VirtualTime.Microseconds()), "virt-µs")
	b.ReportMetric(float64(rep.RecoveryTime.Microseconds()), "recovery-µs")
	b.ReportMetric(float64((rep.VirtualTime - clean.VirtualTime).Microseconds()), "overhead-µs")
}

// BenchmarkFaultServeFailover drives a closed-loop request sequence through a
// two-replica pool whose first replica dies mid-burst: the batch retries on
// the healthy replica under the modeled backoff and the pool degrades to one.
// Gated metrics: the degraded session's modeled p50/p99 and the failover
// overhead against an identical fault-free session.
func BenchmarkFaultServeFailover(b *testing.B) {
	exp, w := benchServeSetup(b)
	const requests = 16
	session := func(faulty bool) ServeStats {
		opts := []ServeOption{
			WithReplicas(2), WithMaxBatch(1),
			WithBatchWindow(time.Second), WithQueueDepth(8),
			WithCostModel(benchServeCost),
		}
		if faulty {
			opts = append(opts,
				WithReplicaFailure(0, 2),
				WithServeRetryBackoff(4*time.Millisecond))
		}
		srv, err := NewServer(exp, opts...)
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < requests; r++ {
			if _, err := srv.Predict(context.Background(), w); err != nil {
				b.Fatal(err)
			}
		}
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		return srv.Stats()
	}
	cleanSt := session(false)
	var st ServeStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = session(true)
	}
	if st.Completed != requests || st.Retries != 1 || st.EvictedReplicas != 1 || st.Replicas != 1 {
		b.Fatalf("stats completed=%d retries=%d evicted=%d replicas=%d, want %d/1/1/1",
			st.Completed, st.Retries, st.EvictedReplicas, st.Replicas, requests)
	}
	b.ReportMetric(float64(st.P50.Microseconds()), "p50-µs")
	b.ReportMetric(float64(st.P99.Microseconds()), "p99-µs")
	b.ReportMetric(float64((st.P99 - cleanSt.P99).Microseconds()), "failover-overhead-µs")
}
