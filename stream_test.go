package pgti

import (
	"context"
	"errors"
	"testing"
	"time"
)

// streamFitOpts is the shared option set of the public streaming tests:
// modeled compute and collation costs pin the virtual clock, so replay
// comparisons are exact rather than merely curve-wise.
func streamFitOpts(epochs int) []Option {
	return []Option{
		WithStrategy(StrategyDistIndex), WithWorkers(2),
		WithBatchSize(8), WithEpochs(epochs), WithLR(0.01),
		WithHidden(8), WithDiffusionSteps(1), WithSeed(42),
		WithPrefetch(),
		WithComputeCost(func(int) time.Duration { return 2 * time.Millisecond }),
		WithAssembleCost(func(items int) time.Duration { return time.Duration(items) * 25 * time.Microsecond }),
	}
}

// TestStreamReplayMatchesExperimentBitwise: the public streaming contract —
// replaying the whole stream in one window reproduces the offline
// experiment's curve and modeled clock bitwise.
func TestStreamReplayMatchesExperimentBitwise(t *testing.T) {
	exp, err := NewExperiment("Chickenpox-Hungary", streamFitOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := exp.Fit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStream("Chickenpox-Hungary", 42, StreamOptions{Window: 522})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rounds, err := st.Retrain(context.Background(), RetrainOptions{}, streamFitOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 || rounds[0].Lo != 0 || rounds[0].Hi != 522 {
		t.Fatalf("rounds %+v, want one round over [0, 522)", rounds)
	}
	replay := rounds[0].Report
	if len(replay.Curve) != len(offline.Curve) {
		t.Fatalf("curve lengths %d vs %d", len(replay.Curve), len(offline.Curve))
	}
	for i := range offline.Curve {
		if replay.Curve[i] != offline.Curve[i] {
			t.Fatalf("epoch %d: stream replay %+v != offline %+v", i, replay.Curve[i], offline.Curve[i])
		}
	}
	if replay.VirtualTime != offline.VirtualTime {
		t.Fatalf("modeled clock %v != offline %v", replay.VirtualTime, offline.VirtualTime)
	}
}

// TestStreamRetrainSwapsIntoServer: rolling rounds warm-start and publish
// weights into a live server; predictions after the swap come from the
// freshly retrained parameters.
func TestStreamRetrainSwapsIntoServer(t *testing.T) {
	// A server seeded from a separately fitted experiment.
	exp, err := NewExperiment("Chickenpox-Hungary", streamFitOpts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Fit(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(exp, WithReplicas(2),
		WithCostModel(func(int) time.Duration { return time.Millisecond }))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st, err := NewStream("Chickenpox-Hungary", 42, StreamOptions{Window: 200, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var seen []StreamRound
	rounds, err := st.Retrain(context.Background(), RetrainOptions{
		Window: 200, Advance: 100, Rounds: 3, Server: srv,
		OnRound: func(r StreamRound) { seen = append(seen, r) },
	}, streamFitOpts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || len(seen) != 3 {
		t.Fatalf("%d rounds (%d observed), want 3", len(rounds), len(seen))
	}
	for k, r := range rounds {
		if !r.Swapped {
			t.Fatalf("round %d weights were not published", k)
		}
		if r.Lo != k*100 || r.Hi != k*100+200 {
			t.Fatalf("round %d window [%d, %d), want [%d, %d)", k, r.Lo, r.Hi, k*100, k*100+200)
		}
		if r.Report == nil || len(r.Report.Curve) == 0 {
			t.Fatalf("round %d has no training report", k)
		}
	}
	// The stream ingested at least the trained prefix on the modeled
	// arrival clock.
	if clock := st.IngestClock(); clock < 400*time.Minute {
		t.Fatalf("ingest clock %v, want >= 400 minutes (400 timesteps)", clock)
	}
	// The served model still answers after the swaps.
	h, n, f := srv.Horizon(), srv.Nodes(), srv.Features()
	w := Window{Values: make([]float64, h*n*f)}
	if _, err := srv.Predict(context.Background(), w); err != nil {
		t.Fatalf("predict after swap: %v", err)
	}
}

// TestStreamOptionValidation: illegal streaming configurations fail fast
// with typed errors.
func TestStreamOptionValidation(t *testing.T) {
	if _, err := NewStream("no-such-dataset", 1, StreamOptions{Window: 64}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if _, err := NewStream("Chickenpox-Hungary", 1, StreamOptions{Window: 4}); err == nil {
		t.Fatal("window below one snapshot accepted")
	}
	st, err := NewStream("Chickenpox-Hungary", 1, StreamOptions{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Checkpointing does not compose with rolling retraining.
	if _, err := st.Retrain(context.Background(), RetrainOptions{},
		append(streamFitOpts(1), WithSaveCheckpoint(t.TempDir()+"/ck"))...); err == nil {
		t.Fatal("checkpointing base accepted")
	}
	// Rounds outliving the stream are rejected up front.
	if _, err := st.Retrain(context.Background(), RetrainOptions{Rounds: 100, Advance: 64},
		streamFitOpts(1)...); err == nil {
		t.Fatal("rounds outliving the stream accepted")
	}
	// Repartitioning requires spatial sharding at the option boundary.
	var ice *InvalidConfigError
	if _, err := NewExperiment("Chickenpox-Hungary", WithRepartition(4, 2)); !errors.As(err, &ice) {
		t.Fatalf("repartition without spatial: %v", err)
	}
	if _, err := NewExperiment("Chickenpox-Hungary", WithNodeWeights(make([]float64, 20))); !errors.As(err, &ice) {
		t.Fatalf("node weights without spatial: %v", err)
	}
}
