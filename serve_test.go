package pgti

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// fitTiny trains a small experiment and builds n distinct live windows.
func fitTiny(t *testing.T, opts ...Option) (*Experiment, []Window) {
	t.Helper()
	all := append(tinyOpts(StrategyIndex, 1), opts...)
	exp, err := NewExperiment("PeMS-BAY", all...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Fit(context.Background()); err != nil {
		t.Fatal(err)
	}
	pred, err := exp.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]Window, 16)
	for i := range ws {
		vals := make([]float64, pred.Horizon()*pred.Nodes()*pred.Features())
		for j := range vals {
			vals[j] = 35 + float64(i)*2 + float64(j%5)
		}
		ws[i] = Window{Values: vals}
	}
	return exp, ws
}

func sameForecast(t *testing.T, label string, got, want Forecast) {
	t.Helper()
	if len(got.Pred) != len(want.Pred) {
		t.Fatalf("%s: %d values vs %d", label, len(got.Pred), len(want.Pred))
	}
	for j := range want.Pred {
		if math.Float64bits(got.Pred[j]) != math.Float64bits(want.Pred[j]) {
			t.Fatalf("%s: value %d: %v != %v", label, j, got.Pred[j], want.Pred[j])
		}
	}
}

// TestServerCoalescedEqualsSerialPredictor is the tentpole acceptance gate:
// N goroutines racing through the coalescing queue (1 and 2 replicas) get
// forecasts bitwise identical to serial Predictor.Predict calls.
func TestServerCoalescedEqualsSerialPredictor(t *testing.T) {
	exp, ws := fitTiny(t)
	pred, err := exp.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]Forecast, len(ws))
	for i, w := range ws {
		if serial[i], err = pred.Predict(w); err != nil {
			t.Fatal(err)
		}
	}

	for _, replicas := range []int{1, 2} {
		srv, err := NewServer(exp,
			WithReplicas(replicas),
			WithMaxBatch(4),
			WithBatchWindow(5*time.Millisecond),
			WithQueueDepth(len(ws)),
		)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]Forecast, len(ws))
		var wg sync.WaitGroup
		for i, w := range ws {
			wg.Add(1)
			go func(i int, w Window) {
				defer wg.Done()
				f, err := srv.Predict(context.Background(), w)
				if err != nil {
					t.Errorf("replicas=%d window %d: %v", replicas, i, err)
					return
				}
				got[i] = f
			}(i, w)
		}
		wg.Wait()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			t.FailNow()
		}
		for i := range ws {
			sameForecast(t, "coalesced", got[i], serial[i])
		}
		st := srv.Stats()
		if st.Completed != int64(len(ws)) {
			t.Fatalf("replicas=%d: completed %d, want %d", replicas, st.Completed, len(ws))
		}
		if st.Replicas != replicas {
			t.Fatalf("stats replicas %d, want %d", st.Replicas, replicas)
		}
	}
}

// TestServerSwapUnderLoad retrains to different weights and swaps them in
// while requests are in flight: every forecast must bitwise-equal either
// the old-weights or the new-weights result — never a torn mixture.
func TestServerSwapUnderLoad(t *testing.T) {
	expOld, ws := fitTiny(t)
	expNew, _ := fitTiny(t, WithEpochs(4)) // different weights, same shape

	predOld, err := expOld.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	predNew, err := expNew.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	oldF, err := predOld.Predict(w)
	if err != nil {
		t.Fatal(err)
	}
	newF, err := predNew.Predict(w)
	if err != nil {
		t.Fatal(err)
	}
	// The test is vacuous if retraining landed on identical weights.
	differ := false
	for j := range oldF.Pred {
		if oldF.Pred[j] != newF.Pred[j] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("old and new weights forecast identically; pick different epochs")
	}

	srv, err := NewServer(expOld, WithMaxBatch(4), WithBatchWindow(time.Millisecond), WithQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const loaders, rounds = 4, 8
	var wg sync.WaitGroup
	results := make(chan Forecast, loaders*rounds)
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f, err := srv.Predict(context.Background(), w)
				if err != nil {
					t.Errorf("Predict under swap: %v", err)
					return
				}
				results <- f
			}
		}()
	}
	// Swap mid-load, repeatedly, between the two weight sets.
	for i := 0; i < 6; i++ {
		src := expNew
		if i%2 == 1 {
			src = expOld
		}
		if err := srv.Swap(src); err != nil {
			t.Fatalf("Swap: %v", err)
		}
	}
	wg.Wait()
	close(results)

	sawAny := false
	for f := range results {
		sawAny = true
		matchOld, matchNew := true, true
		for j := range f.Pred {
			if math.Float64bits(f.Pred[j]) != math.Float64bits(oldF.Pred[j]) {
				matchOld = false
			}
			if math.Float64bits(f.Pred[j]) != math.Float64bits(newF.Pred[j]) {
				matchNew = false
			}
		}
		if !matchOld && !matchNew {
			t.Fatal("forecast matches neither weight set: torn snapshot observed")
		}
	}
	if !sawAny {
		t.Fatal("no results collected")
	}
}

// TestServerShedsWithTypedError saturates a tiny queue and requires the
// typed *OverloadedError via errors.As. MaxBatch exceeds the flood size, so
// the count trigger never fires: every request sits in the queue until the
// batch window lapses, and exactly QueueDepth of them are admitted.
func TestServerShedsWithTypedError(t *testing.T) {
	exp, ws := fitTiny(t)
	const flood, depth = 32, 2
	srv, err := NewServer(exp,
		WithMaxBatch(2*flood),
		WithQueueDepth(depth),
		WithBatchWindow(200*time.Millisecond),
		WithCostModel(func(b int) time.Duration { return time.Duration(b) * time.Millisecond }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	errs := make(chan error, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Predict(context.Background(), ws[i%len(ws)])
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)

	shed := 0
	for err := range errs {
		if err == nil {
			continue
		}
		var ov *OverloadedError
		if !errors.As(err, &ov) {
			t.Fatalf("overload produced %v, want *OverloadedError", err)
		}
		if ov.QueueDepth != depth || ov.RetryAfter <= 0 {
			t.Fatalf("shed hint malformed: %+v", ov)
		}
		shed++
	}
	if shed != flood-depth {
		t.Fatalf("shed %d of %d, want exactly %d (queue admits %d)", shed, flood, flood-depth, depth)
	}
	if st := srv.Stats(); st.Shed != int64(shed) || st.Completed != depth {
		t.Fatalf("stats %+v, want shed=%d completed=%d", st, shed, depth)
	}
}

// TestServerClosedSentinel: Close stops admission with ErrServerClosed and
// is idempotent; deadlines bound queued requests.
func TestServerClosedSentinel(t *testing.T) {
	exp, ws := fitTiny(t)
	srv, err := NewServer(exp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Predict(context.Background(), ws[0]); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Predict(context.Background(), ws[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-close Predict: %v, want ErrServerClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Deadline path: a 1ns budget lapses before any batch can dispatch.
	srv2, err := NewServer(exp, WithDeadline(time.Nanosecond), WithBatchWindow(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := srv2.Predict(context.Background(), ws[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined Predict: %v, want DeadlineExceeded", err)
	}
}

// TestNewServerValidation: unfitted experiments and illegal options fail
// with the package's typed errors.
func TestNewServerValidation(t *testing.T) {
	exp, err := NewExperiment("PeMS-BAY", tinyOpts(StrategyIndex, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(exp); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("NewServer before Fit: %v, want ErrNotFitted", err)
	}
	var ice *InvalidConfigError
	if _, err := NewServer(exp, WithReplicas(-1)); !errors.As(err, &ice) {
		t.Fatalf("negative replicas: %v, want *InvalidConfigError", err)
	}
	if _, err := NewServer(exp, WithDeadline(-time.Second)); !errors.As(err, &ice) {
		t.Fatalf("negative deadline: %v, want *InvalidConfigError", err)
	}
	if err := srvSwapUnfitted(exp); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("Swap from unfitted: %v, want ErrNotFitted", err)
	}
}

// srvSwapUnfitted swaps from an unfitted experiment into a fitted server.
func srvSwapUnfitted(unfitted *Experiment) error {
	// Build a server over a throwaway fitted run is expensive; instead we
	// exercise the snapshot guard directly through Swap's first step.
	_, err := unfitted.eng.ParamSnapshot()
	return err
}
