// Epidemic forecasting with A3T-GCN — the paper's broader-applicability
// model (§5.5) — on the Chickenpox-Hungary benchmark, through the staged
// Experiment API. Demonstrates that index-batching is model-agnostic (any
// sequence-to-sequence architecture trains unchanged on the index-batched
// pipeline) and that a finished experiment keeps serving: the trained
// A3T-GCN answers live forecast queries through its warm Predictor.
//
//	go run ./examples/epidemic
package main

import (
	"context"
	"fmt"
	"log"

	"pgti"
)

func train(model pgti.Model) (*pgti.Report, *pgti.Predictor) {
	exp, err := pgti.NewExperiment("Chickenpox-Hungary",
		pgti.WithStrategy(pgti.StrategyIndex),
		pgti.WithModel(model),
		pgti.WithBatchSize(4),
		pgti.WithEpochs(12),
		pgti.WithHidden(16),
		pgti.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := exp.Fit(context.Background()); err != nil {
		log.Fatal(err)
	}
	rep, err := exp.Eval()
	if err != nil {
		log.Fatal(err)
	}
	pred, err := exp.Predictor()
	if err != nil {
		log.Fatal(err)
	}
	return rep, pred
}

func main() {
	a3t, a3tPred := train(pgti.ModelA3TGCN)
	// Same data, same pipeline, different model: the recurrent PGT-DCRNN.
	dcrnn, _ := train(pgti.ModelPGTDCRNN)

	fmt.Println("weekly chickenpox-case forecasting, 4-week horizon, index-batching")
	fmt.Printf("%5s %16s %16s\n", "epoch", "A3T-GCN valMAE", "PGT-DCRNN valMAE")
	for i := range a3t.Curve {
		fmt.Printf("%5d %16.4f %16.4f\n", i, a3t.Curve[i].ValMAE, dcrnn.Curve[i].ValMAE)
	}
	fmt.Printf("\nA3T-GCN:   best val MAE %.4f cases, test MSE %.4f (standardized)\n",
		a3t.Curve.BestVal(), a3t.TestMSE)
	fmt.Printf("PGT-DCRNN: best val MAE %.4f cases, test MSE %.4f (standardized)\n",
		dcrnn.Curve.BestVal(), dcrnn.TestMSE)
	fmt.Printf("both models shared one %s in-memory dataset (eq. 2)\n",
		pgti.FormatBytes(a3t.RetainedDataBytes))

	// Serve a live query from the warm A3T-GCN: a hypothetical steady
	// outbreak of 40 weekly cases in every county.
	window := pgti.Window{Values: make([]float64, a3tPred.Horizon()*a3tPred.Nodes()*a3tPred.Features())}
	for i := range window.Values {
		window.Values[i] = 40
	}
	f, err := a3tPred.Predict(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive query (steady 40 cases/week everywhere) -> next %d weeks, county 0:", f.Horizon)
	for t := 0; t < f.Horizon; t++ {
		fmt.Printf(" %.1f", f.Pred[t*f.Nodes])
	}
	fmt.Println(" cases")
}
