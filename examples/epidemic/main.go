// Epidemic forecasting with A3T-GCN — the paper's broader-applicability
// model (§5.5) — on the Chickenpox-Hungary benchmark. Demonstrates that
// index-batching is model-agnostic: any sequence-to-sequence architecture
// trains unchanged on the index-batched pipeline.
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"

	"pgti"
)

func main() {
	cfg := pgti.Config{
		Dataset:   "Chickenpox-Hungary",
		Strategy:  pgti.StrategyIndex,
		Model:     pgti.ModelA3TGCN,
		BatchSize: 4,
		Epochs:    12,
		Hidden:    16,
		Seed:      3,
	}
	a3t, err := pgti.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Same data, same pipeline, different model: the recurrent PGT-DCRNN.
	cfg.Model = pgti.ModelPGTDCRNN
	dcrnn, err := pgti.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("weekly chickenpox-case forecasting, 4-week horizon, index-batching")
	fmt.Printf("%5s %16s %16s\n", "epoch", "A3T-GCN valMAE", "PGT-DCRNN valMAE")
	for i := range a3t.Curve {
		fmt.Printf("%5d %16.4f %16.4f\n", i, a3t.Curve[i].ValMAE, dcrnn.Curve[i].ValMAE)
	}
	fmt.Printf("\nA3T-GCN:   best val MAE %.4f cases, test MSE %.4f (standardized)\n",
		a3t.Curve.BestVal(), a3t.TestMSE)
	fmt.Printf("PGT-DCRNN: best val MAE %.4f cases, test MSE %.4f (standardized)\n",
		dcrnn.Curve.BestVal(), dcrnn.TestMSE)
	fmt.Printf("both models shared one %s in-memory dataset (eq. 2)\n",
		pgti.FormatBytes(a3t.RetainedDataBytes))
}
