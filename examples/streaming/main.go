// Streaming: online ingestion and rolling retraining behind pgti.NewStream.
// A bootstrap fit goes live behind a serving pool, then the dataset's signal
// is re-ingested as a live stream — one timestep per modeled minute into a
// bounded sliding ring. Three warm-started retraining rounds roll a window
// across the stream, each round's weights swapped atomically into the server
// without draining, and a forecast after the final swap answers from the
// freshest model. Every printed clock is virtual: the run is deterministic
// across machines.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pgti"
)

func opts(epochs int) []pgti.Option {
	return []pgti.Option{
		pgti.WithStrategy(pgti.StrategyDistIndex),
		pgti.WithWorkers(2),
		pgti.WithBatchSize(8),
		pgti.WithEpochs(epochs),
		pgti.WithHidden(8),
		pgti.WithDiffusionSteps(1),
		pgti.WithSeed(7),
		pgti.WithPrefetch(),
		pgti.WithComputeCost(func(int) time.Duration { return 2 * time.Millisecond }),
	}
}

func main() {
	fmt.Println("PGT-I streaming: sliding-window ingestion with rolling retrains")

	// Bootstrap: go live on whatever history exists before the stream opens.
	exp, err := pgti.NewExperiment("Chickenpox-Hungary", opts(2)...)
	if err != nil {
		log.Fatal(err)
	}
	boot, err := exp.Fit(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap model live: best val MAE %.4f cases\n\n", boot.Curve.BestVal())

	srv, err := pgti.NewServer(exp, pgti.WithReplicas(2))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// The stream replays the same signal as live arrivals: one timestep per
	// modeled minute into a 256-step ring. The producer backpressures rather
	// than evict unreleased history.
	st, err := pgti.NewStream("Chickenpox-Hungary", 7, pgti.StreamOptions{
		Window:   256,
		Interval: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Roll a 200-step window forward in 100-step slides. Each round
	// warm-starts from the last and publishes into the live server: in-flight
	// forecasts finish on the old weights, later ones see only the new.
	rounds, err := st.Retrain(context.Background(), pgti.RetrainOptions{
		Window:  200,
		Advance: 100,
		Rounds:  3,
		Server:  srv,
		OnRound: func(r pgti.StreamRound) {
			lo, hi := st.Retained()
			fmt.Printf("round %d  window [%3d, %3d)  val MAE %.4f  swapped=%v  ring [%3d, %3d)  ingest clock %v\n",
				r.Round, r.Lo, r.Hi, r.Report.Curve.BestVal(), r.Swapped, lo, hi, st.IngestClock())
		},
	}, opts(2)...)
	if err != nil {
		log.Fatal(err)
	}

	// A forecast after the final swap runs on the last round's weights.
	vals := make([]float64, srv.Horizon()*srv.Nodes()*srv.Features())
	for j := range vals {
		vals[j] = 12 + float64(j%9)
	}
	f, err := srv.Predict(context.Background(), pgti.Window{Values: vals})
	if err != nil {
		log.Fatal(err)
	}
	mean, std := st.Stats()
	fmt.Printf("\nafter %d rounds: county 0 forecast %.1f cases (retained window mean %.1f ± %.1f)\n",
		len(rounds), f.Pred[0], mean, std)
}
