// Distributed training demo: distributed-index-batching vs baseline DDP on
// a scaled PeMS-BAY, with real worker goroutines and a real ring AllReduce.
// The virtual clock reports modeled Polaris time; the communication column
// shows why index-batching wins — baseline DDP pays an on-demand data fetch
// for every batch, distributed-index-batching only synchronizes gradients.
// The mem/worker column prints the per-worker modeled footprint next to the
// modeled wall-clock, so the memory claims are verifiable from the output;
// the final section splits the graph spatially (2D spatial x data grid) and
// shows that share shrinking ~N/P while halo traffic stays small.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"pgti"
)

func main() {
	base := pgti.Config{
		Dataset:   "PeMS-BAY",
		Scale:     0.03,
		Model:     pgti.ModelPGTDCRNN,
		BatchSize: 4,
		Epochs:    3,
		Hidden:    12,
		K:         1,
		Seed:      11,
	}

	fmt.Println("workers | strategy        | best val MAE | virtual time | comm time | mem/worker | grad traffic")
	for _, workers := range []int{1, 2, 4} {
		for _, strat := range []pgti.Strategy{pgti.StrategyDistIndex, pgti.StrategyBaselineDDP} {
			if workers == 1 && strat == pgti.StrategyBaselineDDP {
				continue
			}
			cfg := base
			cfg.Strategy = strat
			cfg.Workers = workers
			rep, err := pgti.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7d | %-15v | %12.4f | %12v | %9v | %10s | %s\n",
				workers, rep.Strategy, rep.Curve.BestVal(),
				rep.VirtualTime.Round(1e6), rep.CommTime.Round(1e6),
				pgti.FormatBytes(rep.PerWorkerBytes),
				pgti.FormatBytes(rep.GradSyncBytes))
		}
	}

	fmt.Println("\nspatial sharding (hybrid spatial x data grid): same model, node axis split")
	fmt.Println("  grid SxR | best val MAE | virtual time | mem/worker | halo traffic | halo time | edge cut")
	for _, grid := range []struct{ shards, replicas int }{{1, 1}, {2, 1}, {4, 1}, {2, 2}} {
		cfg := base
		cfg.Strategy = pgti.StrategyDistIndex
		cfg.Workers = grid.replicas
		if grid.shards > 1 {
			cfg.Spatial = pgti.Spatial{Shards: grid.shards}
		}
		rep, err := pgti.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4dx%-3d | %12.4f | %12v | %10s | %12s | %9v | %8d\n",
			grid.shards, grid.replicas, rep.Curve.BestVal(),
			rep.VirtualTime.Round(1e6),
			pgti.FormatBytes(rep.PerWorkerBytes),
			pgti.FormatBytes(rep.HaloBytes), rep.HaloTime.Round(1e6), rep.EdgeCut)
	}

	fmt.Println("\nlarge-global-batch effect (fig. 8): same epochs, growing workers")
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Strategy = pgti.StrategyDistIndex
		cfg.Workers = workers
		cfg.Epochs = 5
		plain, err := pgti.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.ScaleLR = true
		scaled, err := pgti.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("global batch %2d: best val MAE %.4f (plain) vs %.4f (linear LR scaling)\n",
			cfg.BatchSize*workers, plain.Curve.BestVal(), scaled.Curve.BestVal())
	}
}
