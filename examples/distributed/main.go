// Distributed training demo: distributed-index-batching vs baseline DDP on
// a scaled PeMS-BAY, with real worker goroutines and a real ring AllReduce.
// The virtual clock reports modeled Polaris time; the communication column
// shows why index-batching wins — baseline DDP pays an on-demand data fetch
// for every batch, distributed-index-batching only synchronizes gradients.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"pgti"
)

func main() {
	base := pgti.Config{
		Dataset:   "PeMS-BAY",
		Scale:     0.03,
		Model:     pgti.ModelPGTDCRNN,
		BatchSize: 4,
		Epochs:    3,
		Hidden:    12,
		K:         1,
		Seed:      11,
	}

	fmt.Println("workers | strategy        | best val MAE | virtual time | comm time | grad traffic")
	for _, workers := range []int{1, 2, 4} {
		for _, strat := range []pgti.Strategy{pgti.StrategyDistIndex, pgti.StrategyBaselineDDP} {
			if workers == 1 && strat == pgti.StrategyBaselineDDP {
				continue
			}
			cfg := base
			cfg.Strategy = strat
			cfg.Workers = workers
			rep, err := pgti.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7d | %-15v | %12.4f | %12v | %9v | %s\n",
				workers, rep.Strategy, rep.Curve.BestVal(),
				rep.VirtualTime.Round(1e6), rep.CommTime.Round(1e6),
				pgti.FormatBytes(rep.GradSyncBytes))
		}
	}

	fmt.Println("\nlarge-global-batch effect (fig. 8): same epochs, growing workers")
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Strategy = pgti.StrategyDistIndex
		cfg.Workers = workers
		cfg.Epochs = 5
		plain, err := pgti.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.ScaleLR = true
		scaled, err := pgti.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("global batch %2d: best val MAE %.4f (plain) vs %.4f (linear LR scaling)\n",
			cfg.BatchSize*workers, plain.Curve.BestVal(), scaled.Curve.BestVal())
	}
}
