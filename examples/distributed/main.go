// Distributed training demo: distributed-index-batching vs baseline DDP on
// a scaled PeMS-BAY, with real worker goroutines and a real ring AllReduce,
// driven through the staged Experiment API (options in, streamed events
// out). The virtual clock reports modeled Polaris time; the communication
// column shows why index-batching wins — baseline DDP pays an on-demand
// data fetch for every batch, distributed-index-batching only synchronizes
// gradients. The mem/worker column prints the per-worker modeled footprint
// next to the modeled wall-clock, so the memory claims are verifiable from
// the output; the spatial section splits the graph (2D spatial x data grid)
// and shows that share shrinking ~N/P while halo traffic stays small.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	"pgti"
)

// base returns the options shared by every run in this demo.
func base(extra ...pgti.Option) []pgti.Option {
	return append([]pgti.Option{
		pgti.WithScale(0.03),
		pgti.WithModel(pgti.ModelPGTDCRNN),
		pgti.WithBatchSize(4),
		pgti.WithEpochs(3),
		pgti.WithHidden(12),
		pgti.WithDiffusionSteps(1),
		pgti.WithSeed(11),
	}, extra...)
}

func run(opts ...pgti.Option) *pgti.Report {
	exp, err := pgti.NewExperiment("PeMS-BAY", base(opts...)...)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := exp.Fit(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	fmt.Println("workers | strategy        | best val MAE | virtual time | comm time | mem/worker | grad traffic")
	for _, workers := range []int{1, 2, 4} {
		for _, strat := range []pgti.Strategy{pgti.StrategyDistIndex, pgti.StrategyBaselineDDP} {
			if workers == 1 && strat == pgti.StrategyBaselineDDP {
				continue
			}
			rep := run(pgti.WithStrategy(strat), pgti.WithWorkers(workers))
			fmt.Printf("%7d | %-15v | %12.4f | %12v | %9v | %10s | %s\n",
				workers, rep.Strategy, rep.Curve.BestVal(),
				rep.VirtualTime.Round(1e6), rep.CommTime.Round(1e6),
				pgti.FormatBytes(rep.PerWorkerBytes),
				pgti.FormatBytes(rep.GradSyncBytes))
		}
	}

	fmt.Println("\nspatial sharding (hybrid spatial x data grid): same model, node axis split")
	fmt.Println("halo time splits into 'hidden' (overlapped under compute by the interior-first")
	fmt.Println("exchange) and 'exposed' (the tail the virtual clock actually pays):")
	fmt.Println("  grid SxR | best val MAE | virtual time | mem/worker | halo traffic | halo hidden | halo exposed | edge cut")
	for _, grid := range []struct{ shards, replicas int }{{1, 1}, {2, 1}, {4, 1}, {2, 2}} {
		opts := []pgti.Option{pgti.WithStrategy(pgti.StrategyDistIndex), pgti.WithWorkers(grid.replicas)}
		if grid.shards > 1 {
			opts = append(opts, pgti.WithSpatial(grid.shards))
		}
		rep := run(opts...)
		fmt.Printf("  %4dx%-3d | %12.4f | %12v | %10s | %12s | %11v | %12v | %8d\n",
			grid.shards, grid.replicas, rep.Curve.BestVal(),
			rep.VirtualTime.Round(1e6),
			pgti.FormatBytes(rep.PerWorkerBytes),
			pgti.FormatBytes(rep.HaloBytes),
			rep.HaloHiddenTime.Round(1e6),
			(rep.HaloTime - rep.HaloHiddenTime).Round(1e6), rep.EdgeCut)
	}

	fmt.Println("\npipelined training on the 2x2 hybrid grid: prefetch double-buffers batch")
	fmt.Println("assembly (bitwise-identical curve), bounded staleness applies each synced")
	fmt.Println("gradient up to K steps late with error compensation, hiding the sync tail.")
	fmt.Println("the exp intra/inter columns split ALL exposed traffic (gradient sync + halo)")
	fmt.Println("by fabric channel — intra-node NVLink-class vs inter-node fabric — while")
	fmt.Println("'comm exposed' is gradient sync alone; channels drain concurrently, so the")
	fmt.Println("overall exposed time is the channels' max, not their sum:")
	fmt.Println("  variant        | best val MAE | virtual time | comm exposed | exp intra | exp inter | comm hidden")
	hybrid := []pgti.Option{pgti.WithStrategy(pgti.StrategyDistIndex), pgti.WithWorkers(2), pgti.WithSpatial(2)}
	for _, v := range []struct {
		name string
		opts []pgti.Option
	}{
		{"synchronous", nil},
		{"prefetch", []pgti.Option{pgti.WithPrefetch()}},
		{"staleness K=2", []pgti.Option{pgti.WithPrefetch(), pgti.WithStaleness(2)}},
	} {
		rep := run(append(append([]pgti.Option{}, hybrid...), v.opts...)...)
		fmt.Printf("  %-14s | %12.4f | %12v | %12v | %9v | %9v | %v\n",
			v.name, rep.Curve.BestVal(), rep.VirtualTime.Round(1e6),
			rep.CommTime.Round(1e6),
			rep.CommExposedIntra.Round(1e6), rep.CommExposedInter.Round(1e6),
			rep.CommHiddenTime.Round(1e6))
	}

	fmt.Println("\nlarge-global-batch effect (fig. 8): same epochs, growing workers")
	for _, workers := range []int{1, 4} {
		plain := run(pgti.WithStrategy(pgti.StrategyDistIndex), pgti.WithWorkers(workers), pgti.WithEpochs(5))
		scaled := run(pgti.WithStrategy(pgti.StrategyDistIndex), pgti.WithWorkers(workers), pgti.WithEpochs(5), pgti.WithLRScaling())
		fmt.Printf("global batch %2d: best val MAE %.4f (plain) vs %.4f (linear LR scaling)\n",
			plain.GlobalBatch, plain.Curve.BestVal(), scaled.Curve.BestVal())
	}
}
