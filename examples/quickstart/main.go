// Quickstart: train the PGT-DCRNN traffic model on the Chickenpox-Hungary
// epidemiological benchmark with index-batching — the paper's §4.1 pipeline
// — through the staged Experiment API: epochs stream live as they complete,
// and the trained model stays warm behind a Predictor for serving.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pgti"
)

func main() {
	fmt.Println("PGT-I quickstart: index-batching on Chickenpox-Hungary")
	fmt.Printf("%5s %12s %12s\n", "epoch", "train MAE", "val MAE")
	exp, err := pgti.NewExperiment("Chickenpox-Hungary",
		pgti.WithStrategy(pgti.StrategyIndex),
		pgti.WithModel(pgti.ModelPGTDCRNN),
		pgti.WithBatchSize(4), // the paper's Chickenpox batch size
		pgti.WithEpochs(10),
		pgti.WithHidden(16),
		pgti.WithDiffusionSteps(1),
		pgti.WithSeed(1),
		pgti.WithEvents(func(ev pgti.Event) {
			if e, ok := ev.(pgti.EpochEvent); ok {
				fmt.Printf("%5d %12.4f %12.4f\n", e.Epoch, e.TrainMAE, e.ValMAE)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	report, err := exp.Fit(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbest validation MAE: %.4f cases\n", report.Curve.BestVal())
	fmt.Printf("dataset retained in memory: %s (eq. 2 of the paper)\n",
		pgti.FormatBytes(report.RetainedDataBytes))
	fmt.Printf("peak memory: %s system, %s GPU\n",
		pgti.FormatBytes(report.PeakSystemBytes), pgti.FormatBytes(report.PeakGPUBytes))

	// The trained model is still warm: serve a held-out test window from it.
	pred, err := exp.Predictor()
	if err != nil {
		log.Fatal(err)
	}
	forecasts, err := pred.PredictTest(1)
	if err != nil {
		log.Fatal(err)
	}
	f := forecasts[0]
	fmt.Printf("\nserving test window %d from the warm model (MAE %.2f cases):\n", f.SnapshotIndex, f.MAE())
	for n := 0; n < 4 && n < f.Nodes; n++ {
		fmt.Printf("  county %d: predicted %6.1f, actual %6.1f\n", n, f.Pred[n], f.Actual[n])
	}
}
