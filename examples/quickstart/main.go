// Quickstart: train the PGT-DCRNN traffic model on the Chickenpox-Hungary
// epidemiological benchmark with index-batching — the paper's §4.1 pipeline
// — using nothing but the public pgti API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pgti"
)

func main() {
	report, err := pgti.Run(pgti.Config{
		Dataset:   "Chickenpox-Hungary",
		Strategy:  pgti.StrategyIndex,
		Model:     pgti.ModelPGTDCRNN,
		BatchSize: 4, // the paper's Chickenpox batch size
		Epochs:    10,
		Hidden:    16,
		K:         1,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PGT-I quickstart: index-batching on Chickenpox-Hungary")
	fmt.Printf("%5s %12s %12s\n", "epoch", "train MAE", "val MAE")
	for _, r := range report.Curve {
		fmt.Printf("%5d %12.4f %12.4f\n", r.Epoch, r.TrainMAE, r.ValMAE)
	}
	fmt.Printf("\nbest validation MAE: %.4f cases\n", report.Curve.BestVal())
	fmt.Printf("dataset retained in memory: %s (eq. 2 of the paper)\n",
		pgti.FormatBytes(report.RetainedDataBytes))
	fmt.Printf("peak memory: %s system, %s GPU\n",
		pgti.FormatBytes(report.PeakSystemBytes), pgti.FormatBytes(report.PeakGPUBytes))
}
