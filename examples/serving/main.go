// Serving: the train → serve → retrain → swap lifecycle behind
// pgti.NewServer. A quick fit goes live behind a coalescing Server; eight
// goroutines fire concurrent forecasts that the server batches into shared
// forwards (each result bitwise identical to a serial Predictor call); a
// longer retrain then lands mid-flight via an atomic weight swap — no
// drain, no torn snapshot — and the modeled latency/QPS table shows what
// coalescing bought.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pgti"
)

func train(epochs int) *pgti.Experiment {
	exp, err := pgti.NewExperiment("Chickenpox-Hungary",
		pgti.WithStrategy(pgti.StrategyIndex),
		pgti.WithBatchSize(4),
		pgti.WithEpochs(epochs),
		pgti.WithHidden(16),
		pgti.WithDiffusionSteps(1),
		pgti.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	report, err := exp.Fit(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs: best val MAE %.4f cases\n", epochs, report.Curve.BestVal())
	return exp
}

func fire(srv *pgti.Server, label string) {
	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			vals := make([]float64, srv.Horizon()*srv.Nodes()*srv.Features())
			for j := range vals {
				vals[j] = 10 + float64((c*5+j)%9) // distinct plausible case counts
			}
			f, err := srv.Predict(context.Background(), pgti.Window{Values: vals})
			if err != nil {
				log.Fatalf("%s predict: %v", label, err)
			}
			if c == 0 {
				fmt.Printf("%s: county 0 forecast %.1f cases\n", label, f.Pred[0])
			}
		}(c)
	}
	wg.Wait()
}

func main() {
	fmt.Println("PGT-I serving: coalescing batch queue over a warm replica pool")

	// Go live fast on a rough model; quality catches up behind the swap.
	exp := train(3)
	srv, err := pgti.NewServer(exp, pgti.WithReplicas(2), pgti.WithMaxBatch(8))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fire(srv, "initial weights")

	// Retrain to better weights while the server keeps answering, then
	// install them atomically: in-flight batches finish on the old weights,
	// later ones see only the new.
	better := train(12)
	if err := srv.Swap(better); err != nil {
		log.Fatal(err)
	}
	fire(srv, "swapped weights")

	st := srv.Stats()
	fmt.Printf("\nmodeled serving metrics (virtual clock):\n")
	fmt.Printf("  completed %d in %d batches (mean batch %.1f)\n",
		st.Completed, st.Batches, st.MeanBatch)
	fmt.Printf("  p50 %v   p99 %v   %.0f QPS over %v\n", st.P50, st.P99, st.QPS, st.Virtual)
}
