// Traffic forecasting on PeMS-BAY (scaled), reproducing the paper's core
// single-GPU claims end to end through the staged Experiment API:
//
//  1. standard batching and index-batching learn *identically* (same
//     snapshots, same order, same MAE curve);
//
//  2. index-batching slashes peak memory (eq. 1 vs eq. 2);
//
//  3. under a memory cap sized between the two, the standard pipeline OOMs
//     — surfaced as a typed *pgti.OOMError from Fit — while index-batching
//     trains: the PeMS-on-512GB story in miniature.
//
//     go run ./examples/traffic
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"pgti"
)

// train runs one experiment to completion and returns its report (OOM is a
// reported outcome, surfaced as a typed error alongside the partial report).
func train(strategy pgti.Strategy, capGB float64) (*pgti.Report, error) {
	opts := []pgti.Option{
		pgti.WithScale(0.03), // ~9 sensors, ~1500 five-minute intervals
		pgti.WithStrategy(strategy),
		pgti.WithModel(pgti.ModelPGTDCRNN),
		pgti.WithBatchSize(8),
		pgti.WithEpochs(5),
		pgti.WithHidden(12),
		pgti.WithDiffusionSteps(2),
		pgti.WithSeed(7),
	}
	if capGB > 0 {
		opts = append(opts, pgti.WithMemoryCaps(capGB, 0))
	}
	exp, err := pgti.NewExperiment("PeMS-BAY", opts...)
	if err != nil {
		return nil, err
	}
	return exp.Fit(context.Background())
}

func main() {
	fmt.Println("== 1. standard batching vs index-batching ==")
	std, err := train(pgti.StrategyBaseline, 0)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := train(pgti.StrategyIndex, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%5s %16s %16s\n", "epoch", "standard valMAE", "index valMAE")
	for i := range std.Curve {
		fmt.Printf("%5d %16.6f %16.6f\n", i, std.Curve[i].ValMAE, idx.Curve[i].ValMAE)
	}
	fmt.Printf("\nretained data: standard %s (eq. 1) vs index %s (eq. 2)\n",
		pgti.FormatBytes(std.RetainedDataBytes), pgti.FormatBytes(idx.RetainedDataBytes))
	fmt.Printf("peak system memory: standard %s vs index %s (%.1fx reduction)\n\n",
		pgti.FormatBytes(std.PeakSystemBytes), pgti.FormatBytes(idx.PeakSystemBytes),
		float64(std.PeakSystemBytes)/float64(idx.PeakSystemBytes))

	fmt.Println("== 2. the OOM experiment: cap memory at eq. 1 ==")
	capGB := float64(std.RetainedDataBytes) / (1 << 30)
	stdCapped, err := train(pgti.StrategyBaseline, capGB)
	var oom *pgti.OOMError
	switch {
	case errors.As(err, &oom):
		// The typed error names the tracker and the allocation that died.
		fmt.Printf("standard batching under cap: OOM=true (typed: label %q wanted %s)\n",
			oom.Label, pgti.FormatBytes(oom.Requested))
		fmt.Printf("  %s\n", stdCapped.OOMError)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("standard batching under cap: OOM=%v\n", stdCapped.OOM)
	}
	idxCapped, err := train(pgti.StrategyIndex, capGB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index-batching under cap:    OOM=%v (best val MAE %.4f mph)\n",
		idxCapped.OOM, idxCapped.Curve.BestVal())
}
