// Traffic forecasting on PeMS-BAY (scaled), reproducing the paper's core
// single-GPU claims end to end:
//
//  1. standard batching and index-batching learn *identically* (same
//     snapshots, same order, same MAE curve);
//
//  2. index-batching slashes peak memory (eq. 1 vs eq. 2);
//
//  3. under a memory cap sized between the two, the standard pipeline OOMs
//     while index-batching trains — the PeMS-on-512GB story in miniature.
//
//     go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"pgti"
)

func main() {
	base := pgti.Config{
		Dataset:   "PeMS-BAY",
		Scale:     0.03, // ~9 sensors, ~1500 five-minute intervals
		Model:     pgti.ModelPGTDCRNN,
		BatchSize: 8,
		Epochs:    5,
		Hidden:    12,
		K:         2,
		Seed:      7,
	}

	fmt.Println("== 1. standard batching vs index-batching ==")
	cfgStd := base
	cfgStd.Strategy = pgti.StrategyBaseline
	std, err := pgti.Run(cfgStd)
	if err != nil {
		log.Fatal(err)
	}
	cfgIdx := base
	cfgIdx.Strategy = pgti.StrategyIndex
	idx, err := pgti.Run(cfgIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%5s %16s %16s\n", "epoch", "standard valMAE", "index valMAE")
	for i := range std.Curve {
		fmt.Printf("%5d %16.6f %16.6f\n", i, std.Curve[i].ValMAE, idx.Curve[i].ValMAE)
	}
	fmt.Printf("\nretained data: standard %s (eq. 1) vs index %s (eq. 2)\n",
		pgti.FormatBytes(std.RetainedDataBytes), pgti.FormatBytes(idx.RetainedDataBytes))
	fmt.Printf("peak system memory: standard %s vs index %s (%.1fx reduction)\n\n",
		pgti.FormatBytes(std.PeakSystemBytes), pgti.FormatBytes(idx.PeakSystemBytes),
		float64(std.PeakSystemBytes)/float64(idx.PeakSystemBytes))

	fmt.Println("== 2. the OOM experiment: cap memory at eq. 1 ==")
	capGB := float64(std.RetainedDataBytes) / (1 << 30)
	cfgStd.SystemMemoryGB = capGB
	cfgIdx.SystemMemoryGB = capGB
	stdCapped, err := pgti.Run(cfgStd)
	if err != nil {
		log.Fatal(err)
	}
	idxCapped, err := pgti.Run(cfgIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard batching under cap: OOM=%v\n", stdCapped.OOM)
	if stdCapped.OOM {
		fmt.Printf("  %s\n", stdCapped.OOMError)
	}
	fmt.Printf("index-batching under cap:    OOM=%v (best val MAE %.4f mph)\n",
		idxCapped.OOM, idxCapped.Curve.BestVal())
}
