// Capacity planning with the calibrated Polaris model: estimate what every
// strategy costs on the full PeMS dataset at paper scale — which ones OOM a
// 512 GB node, how distributed-index-batching scales to 128 GPUs — without
// owning a supercomputer. This regenerates the headline numbers of the
// paper's Tables 2/4 and Fig. 7 through the public API, then closes the
// loop plan → train → serve: the planned configuration runs for real at
// laptop scale through the staged Experiment API and serves a forecast
// from its warm Predictor.
//
//	go run ./examples/polaris
package main

import (
	"context"
	"fmt"
	"log"

	"pgti"
)

func estimate(cfg pgti.Config) *pgti.PolarisEstimate {
	est, err := pgti.EstimatePolaris(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return est
}

func main() {
	fmt.Println("== single GPU, full PeMS (419 GB after standard preprocessing) ==")
	for _, s := range []pgti.Strategy{pgti.StrategyBaseline, pgti.StrategyIndex, pgti.StrategyGPUIndex} {
		est := estimate(pgti.Config{Dataset: "PeMS", Strategy: s, Epochs: 30})
		status := fmt.Sprintf("%8.1f min | node %6.1f GiB | GPU %5.1f GiB", est.TotalMinutes, est.PeakNodeGiB, est.PeakGPUGiB)
		if est.OOM {
			status = "OOM — " + est.OOMDetail
		}
		fmt.Printf("%-22v %s\n", s, status)
	}

	fmt.Println("\n== scaling distributed-index-batching vs baseline DDP (PeMS, 30 epochs) ==")
	fmt.Printf("%5s | %-14s | %-14s | %s\n", "GPUs", "dist-index", "baseline DDP", "ratio")
	for _, workers := range []int{4, 8, 16, 32, 64, 128} {
		di := estimate(pgti.Config{Dataset: "PeMS", Strategy: pgti.StrategyDistIndex, Workers: workers, Epochs: 30})
		dd := estimate(pgti.Config{Dataset: "PeMS", Strategy: pgti.StrategyBaselineDDP, Workers: workers, Epochs: 30})
		fmt.Printf("%5d | %10.1f min | %10.1f min | %.2fx\n",
			workers, di.TotalMinutes, dd.TotalMinutes, dd.TotalMinutes/di.TotalMinutes)
	}

	fmt.Println("\n== what would it take to train your dataset? (PeMS-BAY, 100 epochs) ==")
	for _, workers := range []int{1, 8, 32} {
		est := estimate(pgti.Config{Dataset: "PeMS-BAY", Strategy: pgti.StrategyDistIndex, Workers: workers, Epochs: 100})
		fmt.Printf("%3d GPU(s): %6.1f min total (%.1f min training, %.1f s preprocessing)\n",
			workers, est.TotalMinutes, est.TrainMinutes, est.PreprocessSeconds)
	}

	// Close the loop: the planned dist-index configuration, run for real at
	// a scale this host can hold, then queried through the warm Predictor.
	fmt.Println("\n== plan -> train -> serve (dist-index at laptop scale) ==")
	exp, err := pgti.NewExperiment("PeMS-BAY",
		pgti.WithScale(0.03),
		pgti.WithStrategy(pgti.StrategyDistIndex),
		pgti.WithWorkers(4),
		pgti.WithBatchSize(4),
		pgti.WithEpochs(3),
		pgti.WithHidden(12),
		pgti.WithDiffusionSteps(1),
		pgti.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := exp.Fit(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := exp.Predictor()
	if err != nil {
		log.Fatal(err)
	}
	forecasts, err := pred.PredictTest(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs on %d workers (best val MAE %.3f mph); serving test window %d: MAE %.2f mph\n",
		len(rep.Curve), rep.Workers, rep.Curve.BestVal(), forecasts[0].SnapshotIndex, forecasts[0].MAE())
}
