package pgti

import (
	"context"
	"fmt"
	"time"

	"pgti/internal/core"
	"pgti/internal/dataset"
)

// Event is the typed notification stream of a running experiment (see
// WithEvents): epoch ends, autotune lock-in, memory high-water marks, and
// OOM. Events are delivered synchronously from the training goroutine that
// produced them, so hooks must be fast and must not call back into the
// experiment.
type Event = core.Event

// The concrete event types.
type (
	// EpochEvent fires after every completed epoch with its curve row.
	EpochEvent = core.EpochEvent
	// AutotuneEvent fires when the gradient-bucket autotuner locks in.
	AutotuneEvent = core.AutotuneEvent
	// MemoryEvent fires when the system tracker's high-water mark grows.
	MemoryEvent = core.MemoryEvent
	// OOMEvent fires when a memory cap is exhausted.
	OOMEvent = core.OOMEvent
	// RepartitionEvent fires after each applied elastic chunk migration
	// (see WithRepartition) with the epoch, the shards involved, the moved
	// node count, and the new edge cut.
	RepartitionEvent = core.RepartitionEvent
)

// Predictor is the warm, goroutine-safe inference handle returned by
// Experiment.Predictor after Fit: Predict forecasts from a raw input
// Window, PredictTest serves the held-out test windows with ground truth —
// byte-for-byte the same computation as Config.EmitForecasts.
type Predictor = core.Predictor

// Window is one raw input window for Predictor.Predict: Horizon time steps
// of all node features in original signal units, row-major
// [step][node][feature].
type Window = core.Window

// Typed errors of the experiment API. Run and Fit wrap them, so callers
// use errors.Is / errors.As rather than string matching.
var (
	// ErrUnknownDataset is wrapped by NewExperiment, Run and
	// EstimatePolaris when the dataset name matches nothing.
	ErrUnknownDataset = dataset.ErrUnknownDataset
	// ErrNotFitted is wrapped by Predictor and Eval before Fit completed.
	ErrNotFitted = core.ErrNotFitted
	// ErrFitted is wrapped by Fit when called twice on one experiment.
	ErrFitted = core.ErrFitted
)

// InvalidConfigError reports an illegal option combination (e.g. spatial
// sharding without the dist-index strategy); match with errors.As and
// inspect Field/Reason.
type InvalidConfigError = core.InvalidConfigError

// OOMError is the typed out-of-memory error surfaced by Fit when a memory
// cap set via WithMemoryCaps is exhausted; the partial Report carries the
// same outcome as Report.OOM.
type OOMError = core.OOMError

// GradStack groups the collective-stack knobs of the gradient exchange:
// the AllReduce algorithm, the simulated node topology, fp16 compression,
// the bucket-size autotuner, and an explicit bucket cap. Zero value =
// defaults (bucketed overlapping ring, flat topology, fp64, no sweep).
type GradStack struct {
	Algo        GradAlgo
	Topology    Topology
	FP16        bool
	AutoTune    bool
	BucketBytes int64
}

// expConfig accumulates option state before validation.
type expConfig struct {
	core       core.Config
	shuffleSet bool
	warmStart  bool
	resume     bool
}

// Option configures an Experiment (see the With* constructors).
type Option func(*expConfig)

// WithModel selects the forecasting architecture (default ModelPGTDCRNN).
func WithModel(m Model) Option { return func(c *expConfig) { c.core.Model = m } }

// WithStrategy selects the training pipeline (default StrategyBaseline).
func WithStrategy(s Strategy) Option { return func(c *expConfig) { c.core.Strategy = s } }

// WithWorkers sets the data-parallel worker count for distributed
// strategies.
func WithWorkers(n int) Option { return func(c *expConfig) { c.core.Workers = n } }

// WithScale shrinks the dataset to fit the host (0 < scale <= 1).
func WithScale(scale float64) Option { return func(c *expConfig) { c.core.Scale = scale } }

// WithBatchSize sets the per-worker batch size (default 32).
func WithBatchSize(n int) Option { return func(c *expConfig) { c.core.BatchSize = n } }

// WithEpochs sets the total epoch budget (default 1). Under WithResume the
// budget counts from epoch 0: a run resumed at epoch k trains epochs
// [k, n).
func WithEpochs(n int) Option { return func(c *expConfig) { c.core.Epochs = n } }

// WithLR sets the learning rate (default 0.01).
func WithLR(lr float64) Option { return func(c *expConfig) { c.core.LR = lr } }

// WithLRScaling applies the linear learning-rate scaling rule for large
// global batches.
func WithLRScaling() Option { return func(c *expConfig) { c.core.UseLRScaling = true } }

// WithHidden sets the hidden width (default 32).
func WithHidden(n int) Option { return func(c *expConfig) { c.core.Hidden = n } }

// WithDiffusionSteps sets the graph-diffusion hop count K (default 2).
func WithDiffusionSteps(k int) Option { return func(c *expConfig) { c.core.K = k } }

// WithSeed seeds all randomness (dataset generation, init, shuffling).
func WithSeed(seed uint64) Option { return func(c *expConfig) { c.core.Seed = seed } }

// WithShuffle explicitly selects the distributed shuffling strategy.
// Unlike the legacy Config.Shuffle field — whose ShuffleGlobal value is
// indistinguishable from "unset", so GenDistIndex silently overrides it —
// this option always wins: WithShuffle(ShuffleGlobal) forces global
// shuffling on any strategy. Omit it to accept the strategy's default
// (global; batch for StrategyGenDistIndex).
func WithShuffle(s Shuffle) Option {
	return func(c *expConfig) {
		c.core.Sampler = s
		c.shuffleSet = true
	}
}

// WithGradStack configures the gradient-exchange collective stack.
func WithGradStack(gs GradStack) Option {
	return func(c *expConfig) {
		c.core.GradAlgo = gs.Algo
		c.core.Topology = gs.Topology
		c.core.GradFP16 = gs.FP16
		c.core.GradAutoTune = gs.AutoTune
		c.core.GradBucketBytes = gs.BucketBytes
	}
}

// WithSpatial partitions the sensor graph into shards node blocks,
// multiplying the worker grid into a 2D (spatial x data) layout. Requires
// StrategyDistIndex and a graph-convolutional model.
func WithSpatial(shards int) Option {
	return func(c *expConfig) { c.core.Spatial = Spatial{Shards: shards} }
}

// WithRepartition enables elastic chunk-based repartitioning on the hybrid
// grid: at each epoch boundary the workers agree on a per-shard load vector
// (the epoch's accumulated step compute) and, once the heaviest shard
// exceeds threshold x the lightest, migrate a chunk of chunkSize owned
// nodes toward the light shard — picked by adjacency affinity so the edge
// cut stays tight — rebuilding row blocks and halo routing in place. Each
// applied move emits a typed RepartitionEvent (see WithEvents) and charges
// the modeled migration transfer to the virtual clock; training results are
// preserved to fp64 tolerance (the moved loss weights reassociate the same
// sums). Requires WithSpatial.
func WithRepartition(chunkSize int, threshold float64) Option {
	return func(c *expConfig) {
		c.core.Repartition.ChunkSize = chunkSize
		c.core.Repartition.Threshold = threshold
	}
}

// WithMeasuredRepartition feeds the repartitioner's epoch-boundary load
// vector from the measured per-shard step compute — the straggler-scaled
// charge the virtual clock actually advanced by — instead of the structural
// node-share charge. The structural vector is blind to an injected
// FaultStraggler (the shard's node share doesn't change when it slows
// down); the measured vector sees the inflation and triggers the migration.
// Requires WithRepartition.
func WithMeasuredRepartition() Option {
	return func(c *expConfig) { c.core.Repartition.Measured = true }
}

// WithNodeWeights injects per-node structural compute weights (len must
// equal the graph's node count): with WithComputeCost set, each spatial
// shard's modeled step charge scales by its owned share of the total weight
// instead of its node-count share, and the initial partition balances the
// weighted load. The skew-injection hook behind the repartitioning studies;
// loss weighting keeps the node-count share, so curves are unchanged.
// Requires WithSpatial.
func WithNodeWeights(w []float64) Option {
	return func(c *expConfig) { c.core.NodeWeights = w }
}

// WithComputeCost replaces measured wall time with a modeled per-batch
// compute cost on the virtual clock. With WithAssembleCost also set, the
// run's entire modeled timeline becomes a pure function of the
// configuration — machine-independent and bitwise reproducible — which is
// what the streaming replay contract and the gated benchmarks pin.
func WithComputeCost(fn func(batchItems int) time.Duration) Option {
	return func(c *expConfig) { c.core.ComputeCost = fn }
}

// WithAssembleCost supplies the modeled host-side batch collation cost.
// Serial runs expose it ahead of every step; under WithPrefetch only each
// epoch's leading assembly stays exposed (the rest hides under compute, and
// the epoch's last train step hides the first eval batch's assembly).
func WithAssembleCost(fn func(batchItems int) time.Duration) Option {
	return func(c *expConfig) { c.core.AssembleCost = fn }
}

// WithPrefetch double-buffers batch assembly on the training hot path: a
// per-epoch collator builds batch s+1 while step s trains, so only the
// epoch's leading assembly stays exposed on the modeled timeline. Batch
// contents are bitwise identical to the serial path — the curve does not
// change. Ignored when a partition store supplies the data
// (StrategyGenDistIndex with multiple workers), where fetch latency is
// modeled instead.
func WithPrefetch() Option { return func(c *expConfig) { c.core.Prefetch = true } }

// WithStaleness opts into bounded-staleness gradient application: step s
// applies step s-k's fully synced gradient with error compensation,
// letting the two-stage gradient sync of up to k steps stay in flight
// behind compute. k = 0 keeps the synchronous schedule and is
// bitwise-pinned to it. Requires spatial sharding (WithSpatial on
// StrategyDistIndex); replicas stay bitwise identical — the queue drains
// at every epoch end, so the update count matches the synchronous run.
func WithStaleness(k int) Option {
	return func(c *expConfig) { c.core.Staleness = k }
}

// WithMemoryCaps caps the byte-exact memory trackers in GiB (0 =
// unlimited). A run exceeding the system cap reports OOM.
func WithMemoryCaps(systemGB, gpuGB float64) Option {
	return func(c *expConfig) {
		c.core.SystemMemory = int64(systemGB * float64(gib))
		c.core.GPUMemory = int64(gpuGB * float64(gib))
	}
}

// WithMissingData zeroes each observation with probability frac and trains
// with the masked-MAE loss.
func WithMissingData(frac float64) Option {
	return func(c *expConfig) { c.core.MissingFrac = frac }
}

// WithWarmStart initializes the model parameters from a checkpoint before
// training (optimizer state and epoch counter start fresh).
func WithWarmStart(path string) Option {
	return func(c *expConfig) {
		c.core.LoadCheckpoint = path
		c.warmStart = true
	}
}

// WithResume restores the full training state — parameters, Adam moments,
// and the epoch cursor — from a checkpoint written by WithSaveCheckpoint,
// and continues deterministically: the resumed curve matches a
// straight-through run's tail bit for bit.
func WithResume(path string) Option {
	return func(c *expConfig) {
		c.core.LoadCheckpoint = path
		c.core.Resume = true
		c.resume = true
	}
}

// WithSaveCheckpoint writes the trained parameters plus the resumable
// optimizer trailer after Fit (rank 0's replica for distributed
// strategies).
func WithSaveCheckpoint(path string) Option {
	return func(c *expConfig) { c.core.SaveCheckpoint = path }
}

// WithForecasts attaches predictions for the first n test windows to the
// report at Eval.
func WithForecasts(n int) Option {
	return func(c *expConfig) { c.core.EmitForecasts = n }
}

// WithTestEval forces the post-training test-split MSE evaluation for
// distributed strategies (single-GPU strategies always evaluate).
func WithTestEval() Option {
	return func(c *expConfig) { c.core.EvalTest = true }
}

// WithEvents streams typed Events (epoch end, autotune lock-in, memory
// high-water, OOM) to fn while Fit runs.
func WithEvents(fn func(Event)) Option {
	return func(c *expConfig) { c.core.Events = core.EventFunc(fn) }
}

// validate rejects illegal option combinations with typed errors before
// any work happens. The engine re-checks the core invariants; the checks
// here are the stricter API-boundary ones (the legacy Config shim stays
// permissive where it always was).
func (c *expConfig) validate() error {
	cc := &c.core
	dist := cc.Strategy.IsDistributed()
	spatial := cc.Spatial.Enabled()
	invalid := func(field, format string, args ...any) error {
		return &InvalidConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
	}
	if cc.Scale < 0 || cc.Scale > 1 {
		return invalid("Scale", "scale %v outside (0, 1] (0 selects full size)", cc.Scale)
	}
	if cc.MissingFrac < 0 || cc.MissingFrac >= 1 {
		return invalid("MissingFrac", "missing fraction %v outside [0, 1)", cc.MissingFrac)
	}
	if cc.Workers > 1 && !dist {
		return invalid("Workers", "%d workers need a distributed strategy, got %v", cc.Workers, cc.Strategy)
	}
	if spatial {
		if cc.Strategy != StrategyDistIndex {
			return invalid("Spatial", "spatial sharding requires StrategyDistIndex, got %v", cc.Strategy)
		}
		if cc.Model == ModelSTLLM {
			return invalid("Spatial", "spatial sharding is unsupported for %v (full spatial attention has no node partition)", cc.Model)
		}
		// The hybrid grid's bucketed two-stage sync composes with fp16,
		// bucket caps and the autotuner; only an explicit algorithm choice
		// has nothing to select (the grouped replica-sum -> shard-mean
		// collective is fixed).
		if cc.GradAlgo != GradAlgoRing {
			return invalid("Spatial", "WithGradStack Algo is not supported with spatial sharding (the two-stage grouped collective is fixed)")
		}
	}
	if cc.GradFP16 && !dist {
		return invalid("GradStack", "fp16 gradient compression needs a distributed strategy (a single GPU ships no gradients)")
	}
	if cc.GradAutoTune && cc.GradAlgo == GradAlgoFlat {
		return invalid("GradStack", "the flat algorithm has no buckets to autotune")
	}
	if cc.Topology.Nodes > 0 && cc.Topology.GPUsPerNode > 0 {
		world := cc.Workers
		if world < 1 {
			world = 1
		}
		if spatial {
			world *= cc.Spatial.Shards
		}
		if declared := cc.Topology.Nodes * cc.Topology.GPUsPerNode; world < declared {
			return invalid("Workers", "topology declares a %dx%d grid (%d slots) but the run has only %d workers",
				cc.Topology.Nodes, cc.Topology.GPUsPerNode, declared, world)
		}
	}
	if cc.Repartition.Enabled() && !spatial {
		return invalid("Repartition", "elastic repartitioning requires spatial sharding (WithSpatial on StrategyDistIndex)")
	}
	if cc.NodeWeights != nil && !spatial {
		return invalid("NodeWeights", "node weights scale per-shard compute and need spatial sharding (WithSpatial)")
	}
	if cc.Staleness < 0 {
		return invalid("Staleness", "staleness bound %d is negative", cc.Staleness)
	}
	if cc.Staleness > 0 && !spatial {
		return invalid("Staleness", "bounded staleness requires spatial sharding (WithSpatial on StrategyDistIndex), got %v", cc.Strategy)
	}
	if c.warmStart && c.resume {
		return invalid("Resume", "WithWarmStart and WithResume are mutually exclusive (one checkpoint path)")
	}
	return nil
}

// Experiment is the staged, composable training lifecycle behind Run:
//
//	exp, _ := pgti.NewExperiment("PeMS-BAY",
//		pgti.WithStrategy(pgti.StrategyDistIndex),
//		pgti.WithWorkers(4), pgti.WithEpochs(20))
//	report, err := exp.Fit(ctx)      // cancellable, streams Events
//	pred, _ := exp.Predictor()       // warm inference handle
//	forecast, _ := pred.Predict(window)
//
// Stages auto-advance (Fit runs Open and Build if the caller has not), but
// can be driven individually to recompose the engine: Open resolves the
// dataset and pipeline, Build the model and distributed grid, Fit trains,
// Eval computes test metrics, Predictor serves. The legacy Run(Config) is
// a thin shim over this exact path and produces bitwise-identical curves.
type Experiment struct {
	eng *core.Engine
}

// NewExperiment configures a staged experiment on the named dataset.
// Illegal option combinations return typed errors (*InvalidConfigError,
// ErrUnknownDataset) immediately — nothing runs until Open/Fit.
func NewExperiment(datasetName string, opts ...Option) (*Experiment, error) {
	meta, err := dataset.ByName(datasetName)
	if err != nil {
		return nil, fmt.Errorf("pgti: %w (available: %v)", err, Datasets())
	}
	c := &expConfig{}
	c.core.Meta = meta
	for _, opt := range opts {
		opt(c)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("pgti: %w", err)
	}
	c.core.SamplerSet = c.shuffleSet
	return &Experiment{eng: core.NewEngine(c.core)}, nil
}

// Open resolves the dataset and data pipeline (generation, preprocessing,
// splits). Idempotent; Fit runs it automatically when skipped.
func (e *Experiment) Open() error { return e.eng.Open() }

// Build constructs the model, injects checkpoint state, and lays out the
// distributed grid and per-worker memory accounting. Idempotent.
func (e *Experiment) Build() error { return e.eng.Build() }

// Fit trains, honoring ctx mid-epoch: on cancellation it returns the
// partial report (completed epochs' curve) alongside an error wrapping
// ctx.Err(). An exhausted memory cap returns the OOM-marked report
// alongside a typed *OOMError. The report is also retained on the
// experiment (see Report).
func (e *Experiment) Fit(ctx context.Context) (*Report, error) {
	err := e.eng.Fit(ctx)
	return reportFromCore(e.eng.Report()), err
}

// Eval computes post-training test metrics (test MSE; forecasts when
// WithForecasts was given) and returns the updated report.
func (e *Experiment) Eval() (*Report, error) {
	err := e.eng.Eval()
	return reportFromCore(e.eng.Report()), err
}

// Predictor returns the warm, goroutine-safe inference handle over the
// trained parameters and normalization statistics. Requires a completed
// Fit (wraps ErrNotFitted otherwise).
//
// Predictor serves one window per call directly off the experiment's own
// parameters; it stays supported and bitwise-pinned, but for production
// serving prefer NewServer, which coalesces concurrent callers into batched
// forwards (bitwise identical to Predictor's results), pools warm replicas,
// sheds overload with typed errors, and swaps in retrained weights without
// draining.
func (e *Experiment) Predictor() (*Predictor, error) { return e.eng.Predictor() }

// Report returns the run's (possibly partial) report, or nil before Open.
func (e *Experiment) Report() *Report { return reportFromCore(e.eng.Report()) }
