package pgti

import (
	"context"
	"errors"
	"testing"
)

// tinyOpts returns fast options matching tinyConfig below.
func tinyConfig(strategy Strategy, workers int) Config {
	return Config{
		Dataset:   "PeMS-BAY",
		Scale:     0.012,
		Strategy:  strategy,
		Workers:   workers,
		BatchSize: 4,
		Epochs:    2,
		Hidden:    8,
		K:         1,
		Seed:      42,
	}
}

func tinyOpts(strategy Strategy, workers int) []Option {
	return []Option{
		WithScale(0.012),
		WithStrategy(strategy),
		WithWorkers(workers),
		WithBatchSize(4),
		WithEpochs(2),
		WithHidden(8),
		WithDiffusionSteps(1),
		WithSeed(42),
	}
}

// TestCompatShimBitwiseIdentical is the API-redesign acceptance gate: the
// legacy Run(Config) shim and the staged NewExperiment(...).Fit path must
// produce bitwise-identical training curves at W ∈ {1, 2, 4}.
func TestCompatShimBitwiseIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		legacy, err := Run(tinyConfig(StrategyDistIndex, workers))
		if err != nil {
			t.Fatalf("W=%d legacy: %v", workers, err)
		}
		exp, err := NewExperiment("PeMS-BAY", tinyOpts(StrategyDistIndex, workers)...)
		if err != nil {
			t.Fatalf("W=%d: %v", workers, err)
		}
		staged, err := exp.Fit(context.Background())
		if err != nil {
			t.Fatalf("W=%d staged: %v", workers, err)
		}
		if len(staged.Curve) != len(legacy.Curve) {
			t.Fatalf("W=%d: curve lengths %d vs %d", workers, len(staged.Curve), len(legacy.Curve))
		}
		for i := range staged.Curve {
			if staged.Curve[i] != legacy.Curve[i] {
				t.Fatalf("W=%d epoch %d: staged %+v != legacy %+v",
					workers, i, staged.Curve[i], legacy.Curve[i])
			}
		}
		if staged.GradSyncBytes != legacy.GradSyncBytes || staged.Steps != legacy.Steps {
			t.Fatalf("W=%d: accounting differs: %d/%d bytes, %d/%d steps",
				workers, staged.GradSyncBytes, legacy.GradSyncBytes, staged.Steps, legacy.Steps)
		}
	}
}

// TestOptionValidationTable drives the illegal combinations through
// NewExperiment and asserts typed errors.
func TestOptionValidationTable(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"spatial+non-dist-index", []Option{
			WithStrategy(StrategyGenDistIndex), WithWorkers(2), WithSpatial(2),
		}},
		{"spatial+st-llm", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2), WithModel(ModelSTLLM),
		}},
		{"spatial+gradstack-algo", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2),
			WithGradStack(GradStack{Algo: GradAlgoHierarchical, Topology: Topology{Nodes: 2, GPUsPerNode: 2}}),
		}},
		{"autotune+flat", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2),
			WithGradStack(GradStack{Algo: GradAlgoFlat, AutoTune: true}),
		}},
		{"workers below topology grid", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2),
			WithGradStack(GradStack{Algo: GradAlgoHierarchical, Topology: Topology{Nodes: 2, GPUsPerNode: 2}}),
		}},
		{"fp16 on single-GPU", []Option{
			WithStrategy(StrategyIndex), WithGradStack(GradStack{FP16: true}),
		}},
		{"workers without distribution", []Option{
			WithStrategy(StrategyIndex), WithWorkers(4),
		}},
		{"scale out of range", []Option{WithScale(1.5)}},
		{"warm-start+resume", []Option{
			WithWarmStart("a.pgtc"), WithResume("b.pgtc"),
		}},
		{"staleness without spatial", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2), WithStaleness(1),
		}},
		{"negative staleness", []Option{
			WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2), WithStaleness(-1),
		}},
	}
	for _, tc := range cases {
		_, err := NewExperiment("PeMS-BAY", tc.opts...)
		var ice *InvalidConfigError
		if !errors.As(err, &ice) {
			t.Fatalf("%s: want *InvalidConfigError, got %v", tc.name, err)
		}
		if ice.Field == "" || ice.Reason == "" {
			t.Fatalf("%s: typed error incomplete: %+v", tc.name, ice)
		}
	}
	// The legal variants of the near-miss combinations still construct.
	legal := [][]Option{
		{WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2)},
		{WithStrategy(StrategyDistIndex), WithWorkers(4),
			WithGradStack(GradStack{Algo: GradAlgoHierarchical, Topology: Topology{Nodes: 2, GPUsPerNode: 2}})},
		{WithStrategy(StrategyDistIndex), WithWorkers(2), WithGradStack(GradStack{FP16: true})},
		// The hybrid grid's bucketed two-stage sync composes with the
		// collective stack's fp16/bucket-cap/autotune knobs.
		{WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2),
			WithGradStack(GradStack{FP16: true, AutoTune: true, BucketBytes: 64 << 10})},
		// Staleness rides the hybrid grid's bucketed two-stage sync;
		// prefetch composes with any strategy.
		{WithStrategy(StrategyDistIndex), WithWorkers(2), WithSpatial(2), WithStaleness(2)},
		{WithStrategy(StrategyGenDistIndex), WithWorkers(2), WithPrefetch()},
	}
	for i, opts := range legal {
		if _, err := NewExperiment("PeMS-BAY", opts...); err != nil {
			t.Fatalf("legal combination %d rejected: %v", i, err)
		}
	}
}

func TestNewExperimentUnknownDataset(t *testing.T) {
	_, err := NewExperiment("nope")
	if !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("want ErrUnknownDataset, got %v", err)
	}
	// The legacy shim wraps the same sentinel.
	_, err = Run(Config{Dataset: "nope"})
	if !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("Run: want ErrUnknownDataset, got %v", err)
	}
}

// TestWithShuffleExplicitGlobal: the options API distinguishes an explicit
// ShuffleGlobal from "unset" — on GenDistIndex the former forces global
// shuffling while the legacy shim (documented) falls back to batch.
func TestWithShuffleExplicitGlobal(t *testing.T) {
	run := func(opts ...Option) *Report {
		t.Helper()
		exp, err := NewExperiment("PeMS-BAY", append(tinyOpts(StrategyGenDistIndex, 2), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := exp.Fit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	unset := run()                              // strategy default: batch shuffling
	global := run(WithShuffle(ShuffleGlobal))   // explicit global wins
	explicitB := run(WithShuffle(ShuffleBatch)) // explicit batch == default

	sameCurve := func(a, b *Report) bool {
		if len(a.Curve) != len(b.Curve) {
			return false
		}
		for i := range a.Curve {
			if a.Curve[i] != b.Curve[i] {
				return false
			}
		}
		return true
	}
	if !sameCurve(unset, explicitB) {
		t.Fatal("explicit batch shuffle must match the GenDistIndex default")
	}
	if sameCurve(unset, global) {
		t.Fatal("explicit global shuffle must change the GenDistIndex schedule")
	}
	// And the legacy shim's documented fallback: Config.Shuffle =
	// ShuffleGlobal reads as unset, i.e. batch.
	cfg := tinyConfig(StrategyGenDistIndex, 2)
	cfg.Shuffle = ShuffleGlobal
	legacy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCurve(legacy, unset) {
		t.Fatal("shim's ShuffleGlobal-is-unset behavior changed")
	}
}

// TestExperimentPredictorServes exercises the public serving surface:
// warm handle, live windows, concurrent calls.
func TestExperimentPredictorServes(t *testing.T) {
	exp, err := NewExperiment("PeMS-BAY", tinyOpts(StrategyIndex, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Predictor(); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("Predictor before Fit: %v", err)
	}
	if _, err := exp.Fit(context.Background()); err != nil {
		t.Fatal(err)
	}
	pred, err := exp.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	window := Window{Values: make([]float64, pred.Horizon()*pred.Nodes()*pred.Features())}
	for i := range window.Values {
		window.Values[i] = 60
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := pred.Predict(window)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pred.PredictTest(1); err != nil {
		t.Fatal(err)
	}
}

// TestExperimentEventsAndEval: the event stream and the staged Eval work
// through the public API.
func TestExperimentEventsAndEval(t *testing.T) {
	var epochs int
	exp, err := NewExperiment("PeMS-BAY",
		append(tinyOpts(StrategyIndex, 1),
			WithForecasts(1),
			WithEvents(func(ev Event) {
				if _, ok := ev.(EpochEvent); ok {
					epochs++
				}
			}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Fit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if epochs != 2 {
		t.Fatalf("epoch events %d, want 2", epochs)
	}
	rep, err := exp.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestMSE <= 0 || len(rep.Forecasts) != 1 {
		t.Fatalf("eval results missing: mse=%v forecasts=%d", rep.TestMSE, len(rep.Forecasts))
	}
}

// TestExperimentCancellation: the public Fit returns the partial report
// alongside the context error.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exp, err := NewExperiment("PeMS-BAY",
		append(tinyOpts(StrategyDistIndex, 2),
			WithEpochs(4),
			WithEvents(func(ev Event) {
				if e, ok := ev.(EpochEvent); ok && e.Epoch == 0 {
					cancel()
				}
			}))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exp.Fit(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || len(rep.Curve) != 1 {
		t.Fatalf("partial report malformed: %+v", rep)
	}
}
