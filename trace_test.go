package pgti

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestWithTraceEndToEnd: the public tracing path — WithTrace on a
// distributed experiment must leave the run bitwise identical, populate
// Report.Trace, and export well-formed Chrome trace-event JSON carrying
// spans for every worker.
func TestWithTraceEndToEnd(t *testing.T) {
	plainExp, err := NewExperiment("PeMS-BAY", tinyOpts(StrategyDistIndex, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainExp.Fit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced run carries a trace summary")
	}

	rec := NewTraceRecorder()
	tracedExp, err := NewExperiment("PeMS-BAY", append(tinyOpts(StrategyDistIndex, 2), WithTrace(rec))...)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := tracedExp.Fit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Bitwise curve identity. (The modeled-clock identity is asserted in
	// the internal trainer suites under a pinned ComputeCost; this public
	// run measures real compute, so its clock is not run-to-run stable
	// with or without tracing.)
	for i := range plain.Curve {
		if traced.Curve[i] != plain.Curve[i] {
			t.Fatalf("epoch %d: tracing moved the curve: %+v vs %+v", i, traced.Curve[i], plain.Curve[i])
		}
	}
	if traced.Trace == nil || traced.Trace.Spans == 0 || traced.Trace.Workers != 2 {
		t.Fatalf("Report.Trace = %+v, want spans across 2 workers", traced.Trace)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not well-formed JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("export has spans for %d workers, want 2", len(pids))
	}
}

// TestWithServeTraceEndToEnd: WithServeTrace records forward and
// queue-wait activity per replica and the end-of-run counters flush on
// Close.
func TestWithServeTraceEndToEnd(t *testing.T) {
	exp, ws := fitTiny(t)
	rec := NewTraceRecorder()
	srv, err := NewServer(exp,
		WithReplicas(2),
		WithMaxBatch(4),
		WithBatchWindow(time.Millisecond),
		WithServeTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := srv.Predict(context.Background(), w); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	sum := rec.Summary()
	if sum.Spans == 0 {
		t.Fatal("no serving spans recorded")
	}
	counters := map[string]bool{}
	for _, m := range sum.Counters {
		counters[m.Name] = true
	}
	gauges := map[string]bool{}
	for _, m := range sum.Gauges {
		gauges[m.Name] = true
	}
	if !counters["serve.shed"] || !gauges["serve.queue.highwater"] {
		t.Fatalf("missing serving metrics: counters %v gauges %v", sum.Counters, sum.Gauges)
	}
}
